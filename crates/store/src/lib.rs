//! # sdq-store
//!
//! The persistence subsystem of the SD-Query workspace: **build once, query
//! many**. A [`Snapshot`] bundles any subset of the queryable artifacts —
//! the raw [`Dataset`], its dimension roles, the §5 [`SdIndex`], a §4
//! [`TopKIndex`], a §3 [`Top1Index`] and the R*-tree baseline — into one
//! versioned, checksummed binary file that restores without any rebuilding.
//!
//! ## File format (versions 1 through 4)
//!
//! ```text
//! offset  size  field
//! ------  ----  -----
//!      0     8  magic  b"SDQSNAP\0"
//!      8     4  format version (u32 LE)
//!     12     4  section count (u32 LE)
//!     16   28·n section table: {kind u32, reserved u32, offset u64, len u64, crc32 u32}
//!      …     4  CRC-32 of the section table
//!      …        section payloads (sdq_core::codec bytes), in table order
//! ```
//!
//! **Version 2** adds the sharded engine: an `engine-manifest` section
//! (dimensionality, roles, per-shard row counts) plus one `engine-shard`
//! section per shard — the shard's [`SdIndex`] codec bytes, with the shard
//! ordinal carried in the table entry's previously-reserved `u32`. A
//! snapshot without an engine is still written as version 1, so older
//! readers keep reading everything this build produces short of engines;
//! version-1 files load unchanged.
//!
//! **Version 3** adds the engine's uncompacted write state: a
//! `mutation-delta` section (the delta-region rows as plain [`Dataset`]
//! codec bytes) and a `mutation-tombstones` section (the addressable row
//! domain as a `u64`, then the dead row ids as a sorted ascending `u32`
//! list). Both are written only when non-empty, and the version only bumps
//! to 3 when at least one is — a compacted (delta-free, tombstone-free)
//! engine still writes version 2 and a plain index still writes version 1,
//! so every file is readable by the oldest reader that understands its
//! content. v1/v2 files load unchanged.
//!
//! **Version 4** adds the `durability` section: the checkpoint generation
//! and epoch that tie a snapshot to its write-ahead log (see the
//! [`durable`] module). As before, the version only bumps when the
//! section is present — snapshots written outside a [`DurableEngine`]
//! keep their old version.
//!
//! Every section payload carries a CRC-32; the table itself is covered by a
//! trailing table checksum, so *any* single flipped byte in the file is
//! detected before decoding begins. Structural validation inside
//! `sdq_core::codec` is the second line of defence: even a checksum
//! collision cannot produce an index that panics at query time.
//!
//! ## File format version 5 (zero-copy / mmap-native)
//!
//! Version 5 keeps the container (magic, version, section table, table
//! CRC-32) but changes the section payloads to the **aligned region
//! encoding** of `sdq_core::codec`: every section payload starts on a
//! 64-byte file offset and consists of framed regions — small `[crc32c]
//! [len]` *metadata* regions verified eagerly at open, and `[crc32c]
//! [count][pad-to-64]` *array* regions whose payload bytes are the exact
//! little-endian in-memory representation of the hot structures (point
//! tables, SoA leaf blocks, sorted columns, coordinate tables). Array
//! checksums are verified **lazily on first touch** (see
//! [`sdq_core::SectionIntegrity`]). Table entries of a v5 file carry
//! `crc32 = 0` — integrity lives in the region headers — and padding bytes
//! between sections must be zero.
//!
//! [`Snapshot::open_mapped`] reinterprets those array regions in place over
//! an `mmap` of the file: open cost is O(metadata), the first query pays
//! one checksum pass over only the regions it touches, and resident memory
//! scales with touched pages rather than file size. [`Snapshot::from_bytes`]
//! reads v5 eagerly (owned copies, checksums up front) so every reader
//! understands every version. Writers choose: [`Snapshot::to_bytes`] emits
//! the newest *legacy* version the content needs (v1–v4, maximum reader
//! compatibility), [`Snapshot::to_bytes_v5`] emits v5.
//!
//! ## Example
//!
//! ```
//! use sdq_core::{Dataset, DimRole, SdQuery, multidim::SdIndex};
//! use sdq_store::Snapshot;
//!
//! let data = Dataset::from_rows(2, &[vec![1.0, 9.0], vec![1.1, 2.0]]).unwrap();
//! let roles = vec![DimRole::Attractive, DimRole::Repulsive];
//! let index = SdIndex::build(data, &roles).unwrap();
//!
//! let mut snap = Snapshot::new();
//! snap.sd = Some(index);
//! let bytes = snap.to_bytes();
//!
//! let restored = Snapshot::from_bytes(&bytes).unwrap();
//! let q = SdQuery::uniform_weights(vec![1.0, 2.0], &roles);
//! let top = restored.sd.as_ref().unwrap().query(&q, 1).unwrap();
//! assert_eq!(top[0].id.index(), 0);
//! ```

pub mod chaos;
mod crc32;
pub mod durable;
pub mod io;
pub mod scrub;
pub mod wal;

use std::path::Path;
use std::sync::Arc;

use sdq_core::codec::{
    corrupt, decode_from_slice, encode_to_vec, Codec, Reader, Writer, REGION_ALIGN,
};
use sdq_core::integrity::ensure_all;
use sdq_core::multidim::SdIndex;
use sdq_core::top1::Top1Index;
use sdq_core::topk::TopKIndex;
use sdq_core::{Dataset, DimRole, SdError, SectionIntegrity};
use sdq_engine::SdEngine;
use sdq_rstar::RStarTree;

pub use chaos::{run_chaos, ChaosConfig, ChaosReport};
pub use crc32::crc32;
pub use durable::{
    DurableEngine, DurableOptions, Health, RecoveryReport, SyncPolicy, WalStatus, RETRY_BUDGET,
};
pub use io::{DiskStorage, Fault, FaultScript, MappedBytes, MemStorage, Storage};
pub use scrub::{scrub_path, RegionFinding, ScrubReport};
pub use sdq_core::CrcState;

/// `b"SDQSNAP\0"` — the first 8 bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"SDQSNAP\0";

/// The newest format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 5;

/// The original format (no engine sections). Snapshots without an engine
/// are still written as version 1 for maximum reader compatibility.
pub const FORMAT_V1: u32 = 1;

/// The sharded-engine format. Engines without uncompacted mutations are
/// still written as version 2.
pub const FORMAT_V2: u32 = 2;

/// The live-mutation format (delta + tombstone sections). Pinned so a
/// future version bump cannot shift what these sections require.
pub const FORMAT_V3: u32 = 3;

/// The durability format (checkpoint-generation section tying a snapshot
/// to its WAL). Only [`DurableEngine`] checkpoints write it.
pub const FORMAT_V4: u32 = 4;

/// The zero-copy format: 64-byte-aligned region-framed section payloads
/// whose array regions are the exact in-memory representation, checksummed
/// lazily (CRC-32C) on first touch. Written by [`Snapshot::to_bytes_v5`];
/// mappable via [`Snapshot::open_mapped`].
pub const FORMAT_V5: u32 = 5;

/// Which container encoding a save should produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotFormat {
    /// The newest legacy version the content needs (v1–v4): compact,
    /// eagerly checksummed, readable by every prior build.
    Legacy,
    /// Format v5: mmap-native aligned regions, lazy checksums, O(1) open.
    V5,
}

/// Hard cap on the section count, far above anything legitimate; rejects
/// absurd table sizes from corrupt headers before allocation.
const MAX_SECTIONS: u32 = 1024;

/// Bytes per section-table entry: kind + reserved + offset + len + crc32.
const TABLE_ENTRY_BYTES: usize = 4 + 4 + 8 + 8 + 4;

/// What one section of a snapshot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum SectionKind {
    /// A raw [`Dataset`].
    Dataset = 1,
    /// The dimension roles the indexes were built under.
    Roles = 2,
    /// The §5 multi-dimensional [`SdIndex`].
    SdIndex = 3,
    /// A §4 2-D [`TopKIndex`].
    TopKIndex = 4,
    /// A §3 fixed-parameter [`Top1Index`].
    Top1Index = 5,
    /// The R*-tree baseline substrate.
    RStarTree = 6,
    /// The sharded engine's manifest (dims, roles, shard row counts).
    /// Format v2+.
    EngineManifest = 7,
    /// One engine shard's [`SdIndex`]; the shard ordinal lives in the
    /// table entry's reserved `u32`. Format v2+.
    EngineShard = 8,
    /// The engine's delta region: uncompacted inserted rows, as plain
    /// [`Dataset`] codec bytes. Format v3+.
    MutationDelta = 9,
    /// The engine's tombstones: the addressable row domain (`u64`) plus the
    /// dead row ids as a sorted ascending `u32` list. Format v3+.
    MutationTombstones = 10,
    /// Durability metadata: checkpoint generation (`u64`) and checkpoint
    /// epoch (`u64`), linking the snapshot to its WAL. Format v4+.
    Durability = 11,
}

impl SectionKind {
    fn from_u32(v: u32) -> Option<Self> {
        match v {
            1 => Some(SectionKind::Dataset),
            2 => Some(SectionKind::Roles),
            3 => Some(SectionKind::SdIndex),
            4 => Some(SectionKind::TopKIndex),
            5 => Some(SectionKind::Top1Index),
            6 => Some(SectionKind::RStarTree),
            7 => Some(SectionKind::EngineManifest),
            8 => Some(SectionKind::EngineShard),
            9 => Some(SectionKind::MutationDelta),
            10 => Some(SectionKind::MutationTombstones),
            11 => Some(SectionKind::Durability),
            _ => None,
        }
    }

    /// Human-readable section name (used in errors and `sdq inspect`).
    pub fn name(self) -> &'static str {
        match self {
            SectionKind::Dataset => "dataset",
            SectionKind::Roles => "roles",
            SectionKind::SdIndex => "sd-index",
            SectionKind::TopKIndex => "topk-index",
            SectionKind::Top1Index => "top1-index",
            SectionKind::RStarTree => "rstar-tree",
            SectionKind::EngineManifest => "engine-manifest",
            SectionKind::EngineShard => "engine-shard",
            SectionKind::MutationDelta => "mutation-delta",
            SectionKind::MutationTombstones => "mutation-tombstones",
            SectionKind::Durability => "durability",
        }
    }

    /// The lowest format version in which this section kind may appear.
    fn min_version(self) -> u32 {
        match self {
            SectionKind::Dataset
            | SectionKind::Roles
            | SectionKind::SdIndex
            | SectionKind::TopKIndex
            | SectionKind::Top1Index
            | SectionKind::RStarTree => FORMAT_V1,
            SectionKind::EngineManifest | SectionKind::EngineShard => FORMAT_V2,
            SectionKind::MutationDelta | SectionKind::MutationTombstones => FORMAT_V3,
            SectionKind::Durability => FORMAT_V4,
        }
    }
}

/// The v4 durability section: ties a snapshot to its write-ahead log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurabilityInfo {
    /// Checkpoint generation; must match the WAL header's generation for
    /// the log to be replayed (a lower WAL generation means its records
    /// are already folded into this snapshot).
    pub generation: u64,
    /// Engine epoch at the checkpoint that wrote this snapshot.
    pub checkpoint_epoch: u64,
}

impl DurabilityInfo {
    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.generation);
        w.u64(self.checkpoint_epoch);
        w.into_bytes()
    }

    fn decode_fields(r: &mut Reader<'_>) -> Result<Self, SdError> {
        let generation = r.u64()?;
        let checkpoint_epoch = r.u64()?;
        if generation == 0 {
            return Err(corrupt("durability generation 0 is invalid"));
        }
        Ok(DurabilityInfo {
            generation,
            checkpoint_epoch,
        })
    }

    fn decode(bytes: &[u8]) -> Result<Self, SdError> {
        let mut r = Reader::new(bytes);
        let info = Self::decode_fields(&mut r)?;
        if r.remaining() != 0 {
            return Err(corrupt("trailing bytes after durability section"));
        }
        Ok(info)
    }
}

/// The v2 engine manifest: everything needed to validate and reassemble the
/// shard sections into an [`SdEngine`].
struct EngineManifest {
    dims: usize,
    roles: Vec<DimRole>,
    shard_rows: Vec<u64>,
}

impl EngineManifest {
    fn of(engine: &SdEngine) -> Self {
        EngineManifest {
            dims: engine.dims(),
            roles: engine.roles().to_vec(),
            shard_rows: engine
                .shards()
                .iter()
                .map(|s| s.data().len() as u64)
                .collect(),
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.usize(self.dims);
        self.roles.encode(&mut w);
        w.usize(self.shard_rows.len());
        for &r in &self.shard_rows {
            w.u64(r);
        }
        w.into_bytes()
    }

    fn decode_fields(r: &mut Reader<'_>) -> Result<Self, SdError> {
        let dims = r.usize()?;
        let roles = Vec::<DimRole>::decode(r)?;
        let count = r.len_prefix(8)?;
        let mut shard_rows = Vec::with_capacity(count);
        for _ in 0..count {
            shard_rows.push(r.u64()?);
        }
        if roles.len() != dims {
            return Err(corrupt(format!(
                "engine manifest names {} roles for {dims} dimensions",
                roles.len()
            )));
        }
        Ok(EngineManifest {
            dims,
            roles,
            shard_rows,
        })
    }

    fn decode(bytes: &[u8]) -> Result<Self, SdError> {
        let mut r = Reader::new(bytes);
        let m = Self::decode_fields(&mut r)?;
        if r.remaining() != 0 {
            return Err(corrupt("trailing bytes after engine manifest"));
        }
        Ok(m)
    }
}

/// Every queryable artifact a snapshot can persist. All slots optional; a
/// snapshot stores whichever are `Some`.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// The raw dataset (for workloads that rebuild or re-index later).
    pub dataset: Option<Dataset>,
    /// Dimension roles, stored alongside so a query session needs no
    /// out-of-band knowledge.
    pub roles: Option<Vec<DimRole>>,
    /// The §5 index (contains its own copy of the dataset).
    pub sd: Option<SdIndex>,
    /// A §4 2-D projection-bound tree.
    pub topk: Option<TopKIndex>,
    /// A §3 fixed-`k`/fixed-weights index.
    pub top1: Option<Top1Index>,
    /// The R*-tree baseline.
    pub rstar: Option<RStarTree>,
    /// The sharded execution engine (snapshot format v2).
    pub engine: Option<SdEngine>,
    /// Durability metadata written by [`DurableEngine`] checkpoints
    /// (snapshot format v4).
    pub durability: Option<DurabilityInfo>,
    /// The container version this snapshot was decoded from (`None` for a
    /// freshly built snapshot). [`Snapshot::preferred_format`] uses it so
    /// mutate-and-save flows preserve the on-disk format they found.
    pub source_version: Option<u32>,
}

/// Metadata of one stored section, as reported by [`Snapshot::inspect_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// What the section holds; `None` for kinds this build does not know.
    pub kind: Option<SectionKind>,
    /// Raw kind tag as stored.
    pub raw_kind: u32,
    /// Absolute file offset of the payload.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// Stored CRC-32 of the payload.
    pub crc32: u32,
}

/// Parsed header of a snapshot, without decoding any payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Stored format version.
    pub version: u32,
    /// Total file size in bytes.
    pub file_len: u64,
    /// The section table.
    pub sections: Vec<SectionInfo>,
}

struct TableEntry {
    raw_kind: u32,
    reserved: u32,
    offset: u64,
    len: u64,
    crc: u32,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Snapshot::default()
    }

    /// `true` when no artifact is present.
    pub fn is_empty(&self) -> bool {
        self.dataset.is_none()
            && self.roles.is_none()
            && self.sd.is_none()
            && self.topk.is_none()
            && self.top1.is_none()
            && self.rstar.is_none()
            && self.engine.is_none()
            && self.durability.is_none()
    }

    /// Serialises every present artifact into the snapshot container
    /// format: version 2 when an engine is present, version 1 otherwise
    /// (so engine-less snapshots stay readable by older builds).
    pub fn to_bytes(&self) -> Vec<u8> {
        // (kind, reserved, payload) — reserved carries the shard ordinal
        // for engine-shard sections and stays 0 everywhere else.
        let mut sections: Vec<(SectionKind, u32, Vec<u8>)> = Vec::new();
        if let Some(d) = &self.dataset {
            sections.push((SectionKind::Dataset, 0, encode_to_vec(d)));
        }
        if let Some(r) = &self.roles {
            sections.push((SectionKind::Roles, 0, encode_to_vec(r)));
        }
        if let Some(i) = &self.sd {
            sections.push((SectionKind::SdIndex, 0, encode_to_vec(i)));
        }
        if let Some(i) = &self.topk {
            sections.push((SectionKind::TopKIndex, 0, encode_to_vec(i)));
        }
        if let Some(i) = &self.top1 {
            sections.push((SectionKind::Top1Index, 0, encode_to_vec(i)));
        }
        if let Some(t) = &self.rstar {
            sections.push((SectionKind::RStarTree, 0, encode_to_vec(t)));
        }
        if let Some(e) = &self.engine {
            sections.push((
                SectionKind::EngineManifest,
                0,
                EngineManifest::of(e).encode(),
            ));
            for (ordinal, shard) in e.shards().iter().enumerate() {
                sections.push((
                    SectionKind::EngineShard,
                    ordinal as u32,
                    encode_to_vec(shard),
                ));
            }
            if !e.delta().is_empty() {
                sections.push((SectionKind::MutationDelta, 0, encode_to_vec(e.delta())));
            }
            let tombstones = e.tombstone_ids();
            if !tombstones.is_empty() {
                let mut w = Writer::new();
                w.u64(e.total_rows() as u64);
                w.u32s(&tombstones);
                sections.push((SectionKind::MutationTombstones, 0, w.into_bytes()));
            }
        }
        if let Some(d) = &self.durability {
            sections.push((SectionKind::Durability, 0, d.encode()));
        }
        let version = if self.durability.is_some() {
            FORMAT_V4
        } else {
            match &self.engine {
                Some(e) if e.has_mutations() => FORMAT_V3,
                Some(_) => FORMAT_V2,
                None => FORMAT_V1,
            }
        };

        // Header: magic + version + count + table + table CRC.
        let table_bytes = TABLE_ENTRY_BYTES * sections.len();
        let payload_base = (8 + 4 + 4 + table_bytes + 4) as u64;

        let mut table = Writer::new();
        let mut offset = payload_base;
        for (kind, reserved, payload) in &sections {
            table.u32(*kind as u32);
            table.u32(*reserved);
            table.u64(offset);
            table.u64(payload.len() as u64);
            table.u32(crc32(payload));
            offset += payload.len() as u64;
        }
        let table = table.into_bytes();

        let mut out = Vec::with_capacity(offset as usize);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&table);
        out.extend_from_slice(&crc32(&table).to_le_bytes());
        for (_, _, payload) in &sections {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Verifies every lazily-checksummed region reachable from the
    /// queryable artifacts (mapped §5 indexes, 2-D trees, engine shards).
    /// A no-op on fully owned snapshots. Called by [`Snapshot::to_bytes_v5`]
    /// so corrupt mapped bytes are never re-encoded under fresh checksums.
    pub fn verify_integrity(&self) -> Result<(), SdError> {
        if let Some(sd) = &self.sd {
            sd.verify_integrity()?;
        }
        if let Some(t) = &self.topk {
            t.verify_integrity()?;
        }
        if let Some(e) = &self.engine {
            for shard in e.shards() {
                shard.verify_integrity()?;
            }
        }
        Ok(())
    }

    /// Every present artifact as `(kind, reserved, payload)` in the v5
    /// encoding: hot artifacts as aligned region streams, small metadata
    /// kinds as their legacy bytes wrapped in one eager meta region.
    fn v5_sections(&self) -> Vec<(SectionKind, u32, Vec<u8>)> {
        fn aligned(f: impl FnOnce(&mut Writer)) -> Vec<u8> {
            let mut w = Writer::new_aligned();
            f(&mut w);
            w.into_bytes()
        }
        fn wrapped(f: impl FnOnce(&mut Writer)) -> Vec<u8> {
            let mut w = Writer::new_aligned();
            w.meta_region(f);
            w.into_bytes()
        }
        let mut sections: Vec<(SectionKind, u32, Vec<u8>)> = Vec::new();
        if let Some(d) = &self.dataset {
            sections.push((SectionKind::Dataset, 0, aligned(|w| d.encode(w))));
        }
        if let Some(r) = &self.roles {
            sections.push((SectionKind::Roles, 0, wrapped(|w| r.encode(w))));
        }
        if let Some(i) = &self.sd {
            sections.push((SectionKind::SdIndex, 0, aligned(|w| i.encode(w))));
        }
        if let Some(i) = &self.topk {
            sections.push((SectionKind::TopKIndex, 0, aligned(|w| i.encode(w))));
        }
        if let Some(i) = &self.top1 {
            sections.push((SectionKind::Top1Index, 0, wrapped(|w| i.encode(w))));
        }
        if let Some(t) = &self.rstar {
            sections.push((SectionKind::RStarTree, 0, wrapped(|w| t.encode(w))));
        }
        if let Some(e) = &self.engine {
            sections.push((
                SectionKind::EngineManifest,
                0,
                wrapped(|w| w.bytes(&EngineManifest::of(e).encode())),
            ));
            for (ordinal, shard) in e.shards().iter().enumerate() {
                sections.push((
                    SectionKind::EngineShard,
                    ordinal as u32,
                    aligned(|w| shard.encode(w)),
                ));
            }
            if !e.delta().is_empty() {
                sections.push((
                    SectionKind::MutationDelta,
                    0,
                    aligned(|w| e.delta().encode(w)),
                ));
            }
            let tombstones = e.tombstone_ids();
            if !tombstones.is_empty() {
                sections.push((
                    SectionKind::MutationTombstones,
                    0,
                    wrapped(|w| {
                        w.u64(e.total_rows() as u64);
                        w.u32s(&tombstones);
                    }),
                ));
            }
        }
        if let Some(d) = &self.durability {
            sections.push((
                SectionKind::Durability,
                0,
                wrapped(|w| w.bytes(&d.encode())),
            ));
        }
        sections
    }

    /// Serialises in format v5: section payloads start on 64-byte file
    /// offsets (zero-padded gaps), table CRCs are zero (integrity lives in
    /// the per-region CRC-32C headers) and array payloads are the exact
    /// in-memory representation, so [`Snapshot::open_mapped`] can serve
    /// queries straight off the file.
    ///
    /// Fails only when this snapshot holds mapped views whose deferred
    /// checksums turn out bad — corruption must surface, not be laundered
    /// under fresh checksums.
    pub fn to_bytes_v5(&self) -> Result<Vec<u8>, SdError> {
        self.verify_integrity()?;
        let sections = self.v5_sections();
        let table_bytes = TABLE_ENTRY_BYTES * sections.len();
        let header_len = (8 + 4 + 4 + table_bytes + 4) as u64;

        let mut table = Writer::new();
        let mut offsets = Vec::with_capacity(sections.len());
        let mut offset = header_len.next_multiple_of(REGION_ALIGN as u64);
        for (kind, reserved, payload) in &sections {
            table.u32(*kind as u32);
            table.u32(*reserved);
            table.u64(offset);
            table.u64(payload.len() as u64);
            table.u32(0);
            offsets.push(offset);
            offset = (offset + payload.len() as u64).next_multiple_of(REGION_ALIGN as u64);
        }
        let table = table.into_bytes();

        let mut out = Vec::with_capacity(offset as usize);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_V5.to_le_bytes());
        out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&table);
        out.extend_from_slice(&crc32(&table).to_le_bytes());
        for (off, (_, _, payload)) in offsets.iter().zip(&sections) {
            out.resize(*off as usize, 0);
            out.extend_from_slice(payload);
        }
        Ok(out)
    }

    /// Serialises in the requested container format.
    pub fn to_bytes_as(&self, format: SnapshotFormat) -> Result<Vec<u8>, SdError> {
        match format {
            SnapshotFormat::Legacy => Ok(self.to_bytes()),
            SnapshotFormat::V5 => self.to_bytes_v5(),
        }
    }

    /// The format a save should default to: whatever this snapshot was
    /// decoded from (so mutate-and-save flows preserve the on-disk format
    /// they found), v5 for freshly built snapshots.
    pub fn preferred_format(&self) -> SnapshotFormat {
        match self.source_version {
            Some(v) if v < FORMAT_V5 => SnapshotFormat::Legacy,
            _ => SnapshotFormat::V5,
        }
    }

    fn parse_header(bytes: &[u8]) -> Result<(u32, Vec<TableEntry>), SdError> {
        let mut r = Reader::new(bytes);
        let magic = r.take(8).map_err(|_| SdError::SnapshotBadMagic)?;
        if magic != MAGIC {
            return Err(SdError::SnapshotBadMagic);
        }
        let version = r.u32()?;
        if version > FORMAT_VERSION {
            return Err(SdError::SnapshotVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        if version == 0 {
            return Err(corrupt("format version 0 is invalid"));
        }
        let count = r.u32()?;
        if count > MAX_SECTIONS {
            return Err(corrupt(format!(
                "section count {count} exceeds the {MAX_SECTIONS} cap"
            )));
        }
        let table_raw = r.take(TABLE_ENTRY_BYTES * count as usize)?;
        let stored_table_crc = r.u32()?;
        if crc32(table_raw) != stored_table_crc {
            return Err(SdError::SnapshotChecksum {
                section: "section table".to_string(),
            });
        }
        let mut entries = Vec::with_capacity(count as usize);
        let mut tr = Reader::new(table_raw);
        for _ in 0..count {
            let raw_kind = tr.u32()?;
            let reserved = tr.u32()?;
            let offset = tr.u64()?;
            let len = tr.u64()?;
            let crc = tr.u32()?;
            entries.push(TableEntry {
                raw_kind,
                reserved,
                offset,
                len,
                crc,
            });
        }
        Ok((version, entries))
    }

    fn section_slice<'a>(bytes: &'a [u8], entry: &TableEntry) -> Result<&'a [u8], SdError> {
        let start =
            usize::try_from(entry.offset).map_err(|_| corrupt("section offset exceeds usize"))?;
        let len =
            usize::try_from(entry.len).map_err(|_| corrupt("section length exceeds usize"))?;
        let end = start
            .checked_add(len)
            .ok_or_else(|| corrupt("section range overflows"))?;
        if end > bytes.len() {
            return Err(corrupt(format!(
                "section [{start}, {end}) outside the {}-byte file (truncated?)",
                bytes.len()
            )));
        }
        Ok(&bytes[start..end])
    }

    /// Checks that the file ends exactly where the section table says it
    /// does — appended garbage is as suspect as truncation.
    fn check_file_len(bytes: &[u8], entries: &[TableEntry]) -> Result<(), SdError> {
        let header_len = (8 + 4 + 4 + TABLE_ENTRY_BYTES * entries.len() + 4) as u64;
        let expected_len = entries
            .iter()
            .fold(header_len, |acc, e| acc.max(e.offset.saturating_add(e.len)));
        if bytes.len() as u64 != expected_len {
            return Err(corrupt(format!(
                "file is {} bytes but the section table accounts for {expected_len}",
                bytes.len()
            )));
        }
        Ok(())
    }

    /// Restores a snapshot from container bytes, verifying the magic, the
    /// format version and every checksum before decoding. Reads every
    /// format version; v5 files are decoded eagerly into owned memory
    /// (use [`Snapshot::open_mapped`] for the zero-copy path).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SdError> {
        let (version, entries) = Self::parse_header(bytes)?;
        Self::check_file_len(bytes, &entries)?;
        if version == FORMAT_V5 {
            return Self::decode_v5(bytes, &entries, None).map(|(snap, _)| snap);
        }
        let mut snap = Snapshot::new();
        snap.source_version = Some(version);
        let mut manifest: Option<EngineManifest> = None;
        let mut engine_shards: Vec<(u32, SdIndex)> = Vec::new();
        let mut delta: Option<Dataset> = None;
        let mut tombstones: Option<(u64, Vec<u32>)> = None;
        for entry in &entries {
            let payload = Self::section_slice(bytes, entry)?;
            let kind = SectionKind::from_u32(entry.raw_kind)
                .ok_or_else(|| corrupt(format!("unknown section kind {}", entry.raw_kind)))?;
            if crc32(payload) != entry.crc {
                return Err(SdError::SnapshotChecksum {
                    section: kind.name().to_string(),
                });
            }
            if version < kind.min_version() {
                return Err(corrupt(format!(
                    "{} section in a format-v{version} file",
                    kind.name()
                )));
            }
            match kind {
                SectionKind::Dataset => snap.dataset = Some(decode_from_slice(payload)?),
                SectionKind::Roles => snap.roles = Some(decode_from_slice(payload)?),
                SectionKind::SdIndex => snap.sd = Some(decode_from_slice(payload)?),
                SectionKind::TopKIndex => snap.topk = Some(decode_from_slice(payload)?),
                SectionKind::Top1Index => snap.top1 = Some(decode_from_slice(payload)?),
                SectionKind::RStarTree => snap.rstar = Some(decode_from_slice(payload)?),
                SectionKind::EngineManifest => manifest = Some(EngineManifest::decode(payload)?),
                SectionKind::EngineShard => {
                    engine_shards.push((entry.reserved, decode_from_slice(payload)?))
                }
                SectionKind::MutationDelta => delta = Some(decode_from_slice(payload)?),
                SectionKind::MutationTombstones => {
                    tombstones = Some(Self::decode_tombstones(payload)?)
                }
                SectionKind::Durability => snap.durability = Some(DurabilityInfo::decode(payload)?),
            }
        }
        Self::finish_engine(&mut snap, manifest, engine_shards, delta, tombstones)?;
        Ok(snap)
    }

    /// Reassembles the engine (when present) and restores its mutation
    /// state — the shared tail of every decode path.
    fn finish_engine(
        snap: &mut Snapshot,
        manifest: Option<EngineManifest>,
        engine_shards: Vec<(u32, SdIndex)>,
        delta: Option<Dataset>,
        tombstones: Option<(u64, Vec<u32>)>,
    ) -> Result<(), SdError> {
        snap.engine = Self::assemble_engine(manifest, engine_shards)?;
        if delta.is_some() || tombstones.is_some() {
            let Some(engine) = snap.engine.as_mut() else {
                return Err(corrupt("mutation section without an engine"));
            };
            let delta = match delta {
                Some(d) => d,
                None => Dataset::from_flat(engine.dims(), Vec::new())
                    .expect("empty dataset is always valid"),
            };
            let domain = (engine.total_rows() + delta.len()) as u64;
            let ids = match tombstones {
                Some((stored_domain, ids)) => {
                    if stored_domain != domain {
                        return Err(corrupt(format!(
                            "tombstone domain {stored_domain} disagrees with the \
                             {domain} addressable rows (base + delta)"
                        )));
                    }
                    ids
                }
                None => Vec::new(),
            };
            engine.restore_mutations(delta, &ids)?;
        }
        Ok(())
    }

    /// Decodes a format-v5 file. With `keep = Some(...)` the hot array
    /// regions become borrowed views of that buffer (checksums lazy);
    /// otherwise everything is copied and verified eagerly. Returns the
    /// snapshot plus every region walked, for inspection and
    /// [`MappedSnapshot::verify_all`].
    fn decode_v5(
        bytes: &[u8],
        entries: &[TableEntry],
        keep: Option<&MappedBytes>,
    ) -> Result<(Snapshot, Vec<Arc<SectionIntegrity>>), SdError> {
        // Layout discipline before any payload is trusted: entries in
        // ascending offset order, every payload 64-aligned, table CRCs
        // zeroed (integrity lives in the region headers), gaps zero.
        let header_len = (8 + 4 + 4 + TABLE_ENTRY_BYTES * entries.len() + 4) as u64;
        let mut cursor = header_len;
        for entry in entries {
            if entry.crc != 0 {
                return Err(corrupt(
                    "v5 table entry carries a section CRC (regions carry their own)",
                ));
            }
            if entry.offset % REGION_ALIGN as u64 != 0 {
                return Err(corrupt(format!(
                    "v5 section at offset {} is not {REGION_ALIGN}-byte aligned",
                    entry.offset
                )));
            }
            if entry.offset < cursor {
                return Err(corrupt(
                    "v5 sections overlap or are out of table order".to_string(),
                ));
            }
            // The gap is inside the file: offsets were bounds-checked by
            // `check_file_len` only as max(end); re-check begin here.
            let (gap_start, gap_end) = (cursor as usize, entry.offset as usize);
            if gap_end > bytes.len() {
                return Err(corrupt("v5 section offset beyond end of file"));
            }
            if bytes[gap_start..gap_end].iter().any(|&b| b != 0) {
                return Err(corrupt("nonzero padding between v5 sections"));
            }
            cursor = entry
                .offset
                .checked_add(entry.len)
                .ok_or_else(|| corrupt("section range overflows"))?;
        }
        let mut snap = Snapshot::new();
        snap.source_version = Some(FORMAT_V5);
        let mut regions: Vec<Arc<SectionIntegrity>> = Vec::new();
        let mut manifest: Option<EngineManifest> = None;
        let mut engine_shards: Vec<(u32, SdIndex)> = Vec::new();
        let mut delta: Option<Dataset> = None;
        let mut tombstones: Option<(u64, Vec<u32>)> = None;
        for entry in entries {
            let payload = Self::section_slice(bytes, entry)?;
            let kind = SectionKind::from_u32(entry.raw_kind)
                .ok_or_else(|| corrupt(format!("unknown section kind {}", entry.raw_kind)))?;
            let prefix = match kind {
                SectionKind::EngineShard => format!("{}{}", kind.name(), entry.reserved),
                _ => kind.name().to_string(),
            };
            // Only the hot artifacts are worth borrowing; small metadata
            // sections (and the delta, which mutations rewrite anyway) are
            // decoded eagerly even in mapped mode.
            let map_this = matches!(
                kind,
                SectionKind::Dataset
                    | SectionKind::SdIndex
                    | SectionKind::TopKIndex
                    | SectionKind::EngineShard
            );
            let mut r = match (keep, map_this) {
                (Some(mb), true) => {
                    // Safety: `payload` borrows `mb`'s buffer (64-aligned
                    // base + 64-aligned section offset) and `mb.keep()`
                    // pins that memory for as long as any view lives.
                    unsafe { Reader::new_mapped(payload, mb.keep(), prefix, entry.offset) }
                }
                _ => Reader::new_aligned(payload, prefix, entry.offset),
            };
            match kind {
                SectionKind::Dataset => snap.dataset = Some(Dataset::decode(&mut r)?),
                SectionKind::Roles => {
                    snap.roles = Some(r.meta_region("legacy", Vec::<DimRole>::decode)?)
                }
                SectionKind::SdIndex => snap.sd = Some(SdIndex::decode(&mut r)?),
                SectionKind::TopKIndex => snap.topk = Some(TopKIndex::decode(&mut r)?),
                SectionKind::Top1Index => {
                    snap.top1 = Some(r.meta_region("legacy", Top1Index::decode)?)
                }
                SectionKind::RStarTree => {
                    snap.rstar = Some(r.meta_region("legacy", RStarTree::decode)?)
                }
                SectionKind::EngineManifest => {
                    manifest = Some(r.meta_region("legacy", EngineManifest::decode_fields)?)
                }
                SectionKind::EngineShard => {
                    engine_shards.push((entry.reserved, SdIndex::decode(&mut r)?))
                }
                SectionKind::MutationDelta => delta = Some(Dataset::decode(&mut r)?),
                SectionKind::MutationTombstones => {
                    tombstones = Some(r.meta_region("legacy", Self::decode_tombstone_fields)?)
                }
                SectionKind::Durability => {
                    snap.durability = Some(r.meta_region("legacy", DurabilityInfo::decode_fields)?)
                }
            }
            if !r.is_exhausted() {
                return Err(corrupt(format!(
                    "{} trailing bytes in {} section",
                    r.remaining(),
                    kind.name()
                )));
            }
            regions.extend(r.take_regions());
        }
        Self::finish_engine(&mut snap, manifest, engine_shards, delta, tombstones)?;
        Ok((snap, regions))
    }

    /// Decodes `mutation-tombstones` fields: `u64` domain plus sorted
    /// strictly-ascending `u32` ids (canonical, so bytes stay
    /// deterministic across save→load→save).
    fn decode_tombstone_fields(r: &mut Reader<'_>) -> Result<(u64, Vec<u32>), SdError> {
        let domain = r.u64()?;
        let ids = r.u32s()?;
        for pair in ids.windows(2) {
            if pair[0] >= pair[1] {
                return Err(corrupt(format!(
                    "tombstone ids not strictly ascending ({} then {})",
                    pair[0], pair[1]
                )));
            }
        }
        Ok((domain, ids))
    }

    fn decode_tombstones(payload: &[u8]) -> Result<(u64, Vec<u32>), SdError> {
        let mut r = Reader::new(payload);
        let out = Self::decode_tombstone_fields(&mut r)?;
        if r.remaining() != 0 {
            return Err(corrupt("trailing bytes after tombstone list"));
        }
        Ok(out)
    }

    /// Validates the engine manifest against the decoded shard sections and
    /// reassembles the [`SdEngine`].
    fn assemble_engine(
        manifest: Option<EngineManifest>,
        mut shards: Vec<(u32, SdIndex)>,
    ) -> Result<Option<SdEngine>, SdError> {
        let Some(m) = manifest else {
            if shards.is_empty() {
                return Ok(None);
            }
            return Err(corrupt("engine-shard section without engine-manifest"));
        };
        if shards.len() != m.shard_rows.len() {
            return Err(corrupt(format!(
                "engine manifest names {} shards but {} shard sections are present",
                m.shard_rows.len(),
                shards.len()
            )));
        }
        shards.sort_by_key(|&(ordinal, _)| ordinal);
        for (i, (ordinal, shard)) in shards.iter().enumerate() {
            if *ordinal as usize != i {
                return Err(corrupt(format!(
                    "engine shard ordinals are not 0..{} (found {ordinal} at position {i})",
                    shards.len()
                )));
            }
            if shard.data().len() as u64 != m.shard_rows[i] {
                return Err(corrupt(format!(
                    "engine shard {i} holds {} rows but the manifest says {}",
                    shard.data().len(),
                    m.shard_rows[i]
                )));
            }
        }
        let indexes: Vec<SdIndex> = shards.into_iter().map(|(_, s)| s).collect();
        Ok(Some(SdEngine::from_parts(m.dims, m.roles, indexes)?))
    }

    /// Parses only the header and section table — cheap metadata access for
    /// `sdq inspect`.
    pub fn inspect_bytes(bytes: &[u8]) -> Result<SnapshotInfo, SdError> {
        let (version, entries) = Self::parse_header(bytes)?;
        Ok(SnapshotInfo {
            version,
            file_len: bytes.len() as u64,
            sections: entries
                .iter()
                .map(|e| SectionInfo {
                    kind: SectionKind::from_u32(e.raw_kind),
                    raw_kind: e.raw_kind,
                    offset: e.offset,
                    len: e.len,
                    crc32: e.crc,
                })
                .collect(),
        })
    }

    /// Writes the snapshot to `path` atomically *and durably*: temp file
    /// → `sync_all` → rename → parent-directory fsync, so a crash at any
    /// point leaves either the old file or the complete new one.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SdError> {
        let path = path.as_ref();
        let bytes = self.to_bytes();
        io::atomic_write_path(path, &bytes)
            .map_err(|e| SdError::SnapshotIo(format!("{}: {e}", path.display())))
    }

    /// Reads and restores a snapshot from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SdError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| SdError::SnapshotIo(format!("{}: {e}", path.display())))?;
        Self::from_bytes(&bytes)
    }

    /// Reads only the header/table of the snapshot at `path`.
    pub fn inspect(path: impl AsRef<Path>) -> Result<SnapshotInfo, SdError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| SdError::SnapshotIo(format!("{}: {e}", path.display())))?;
        Self::inspect_bytes(&bytes)
    }

    /// [`Snapshot::save`] in an explicit container format.
    pub fn save_as(&self, path: impl AsRef<Path>, format: SnapshotFormat) -> Result<(), SdError> {
        let path = path.as_ref();
        let bytes = self.to_bytes_as(format)?;
        io::atomic_write_path(path, &bytes)
            .map_err(|e| SdError::SnapshotIo(format!("{}: {e}", path.display())))
    }

    /// [`Snapshot::save`] in format v5 (the mmap-native encoding).
    pub fn save_v5(&self, path: impl AsRef<Path>) -> Result<(), SdError> {
        self.save_as(path, SnapshotFormat::V5)
    }

    /// Opens the snapshot at `path` zero-copy: the file is `mmap`ed and a
    /// v5 file's array regions are served straight off the mapping — open
    /// cost is O(metadata), the first query pays one CRC-32C pass over only
    /// the regions it touches, and resident memory scales with touched
    /// pages. Legacy files (v1–v4) fall back to a normal owned decode.
    pub fn open_mapped(path: impl AsRef<Path>) -> Result<MappedSnapshot, SdError> {
        let path = path.as_ref();
        let bytes = MappedBytes::map_file(path)
            .map_err(|e| SdError::SnapshotIo(format!("{}: {e}", path.display())))?;
        Self::from_mapped(bytes)
    }

    /// [`Snapshot::open_mapped`] over an already-acquired buffer. Works
    /// with the owned [`MappedBytes`] fallback too (its buffer is 64-byte
    /// aligned and kept alive by the views, so borrowing stays sound).
    pub fn from_mapped(buffer: MappedBytes) -> Result<MappedSnapshot, SdError> {
        let bytes: &[u8] = &buffer;
        let (version, entries) = Self::parse_header(bytes)?;
        Self::check_file_len(bytes, &entries)?;
        if version < FORMAT_V5 {
            // Pre-v5 payloads are not reinterpretable in place; decode the
            // classic way so every file still opens through this API.
            let snapshot = Self::from_bytes(bytes)?;
            return Ok(MappedSnapshot {
                snapshot,
                version,
                mapped: false,
                sections: Vec::new(),
            });
        }
        let mapped = buffer.is_mapped();
        let (snapshot, sections) = Self::decode_v5(bytes, &entries, Some(&buffer))?;
        Ok(MappedSnapshot {
            snapshot,
            version,
            mapped,
            sections,
        })
    }
}

/// A snapshot opened by [`Snapshot::open_mapped`]: the decoded artifacts
/// plus the integrity handle of every framed region walked, for inspection
/// ([`MappedSnapshot::regions`]) and full-file verification
/// ([`MappedSnapshot::verify_all`]).
#[derive(Debug)]
pub struct MappedSnapshot {
    /// The decoded snapshot; for a v5 file its hot arrays borrow the
    /// underlying buffer.
    pub snapshot: Snapshot,
    version: u32,
    mapped: bool,
    sections: Vec<Arc<SectionIntegrity>>,
}

impl MappedSnapshot {
    /// The container version of the source file.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// `true` when the buffer is a real `mmap` of the file (as opposed to
    /// the owned in-memory fallback). Either way a v5 decode borrows the
    /// buffer zero-copy.
    pub fn is_mapped(&self) -> bool {
        self.mapped
    }

    /// Every framed region of the file, in layout order — name, file
    /// offset, length and checksum state (lazy / verified / failed).
    /// Empty for pre-v5 files.
    pub fn regions(&self) -> &[Arc<SectionIntegrity>] {
        &self.sections
    }

    /// Forces checksum verification of every region, including ones no
    /// query has touched yet. The full-coverage equivalent of the legacy
    /// eager decode; run it before trusting a file end to end.
    pub fn verify_all(&self) -> Result<(), SdError> {
        ensure_all(&self.sections)
    }
}

/// Parses a roles string like `"ar"` / `"rraa"` (`a` = attractive, `r` =
/// repulsive) — the CLI and test shorthand.
pub fn parse_roles(spec: &str) -> Result<Vec<DimRole>, SdError> {
    spec.chars()
        .map(|c| match c {
            'a' | 'A' => Ok(DimRole::Attractive),
            'r' | 'R' => Ok(DimRole::Repulsive),
            other => Err(SdError::SnapshotCorrupt {
                detail: format!("role character {other:?} (want 'a' or 'r')"),
            }),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdq_core::SdQuery;

    fn sample_sd() -> SdIndex {
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                let x = i as f64;
                vec![(x * 0.7).sin(), x * 0.3, 10.0 - x * 0.2]
            })
            .collect();
        let data = Dataset::from_rows(3, &rows).unwrap();
        let roles = parse_roles("arr").unwrap();
        SdIndex::build(data, &roles).unwrap()
    }

    /// A full snapshot whose engine carries uncompacted mutations — the
    /// byte-flip/truncation sweeps below therefore cover the v3 sections.
    fn sample_snapshot() -> Snapshot {
        let mut snap = Snapshot::new();
        let sd = sample_sd();
        snap.dataset = Some(sd.data().clone());
        snap.roles = Some(sd.roles().to_vec());
        snap.topk = Some(TopKIndex::build(&[(0.0, 1.0), (3.0, -2.0), (5.5, 4.0)]).unwrap());
        snap.top1 = Some(Top1Index::build(&[(0.0, 1.0), (3.0, -2.0)], 1.0, 1.0, 1).unwrap());
        snap.rstar = Some(RStarTree::bulk_load(2, &[0.0, 1.0, 3.0, -2.0, 5.5, 4.0], 4));
        let mut engine = SdEngine::build_with(
            sd.data().clone(),
            sd.roles(),
            &sdq_engine::EngineOptions {
                shards: 2,
                ..Default::default()
            },
        )
        .unwrap();
        engine.insert(&[0.5, 4.5, 9.0]).unwrap();
        engine.insert(&[-0.2, 8.0, 1.0]).unwrap();
        engine.delete(sdq_core::PointId::new(3)).unwrap();
        snap.engine = Some(engine);
        snap.sd = Some(sd);
        snap
    }

    #[test]
    fn full_snapshot_roundtrips() {
        let snap = sample_snapshot();
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();

        let q = SdQuery::uniform_weights(vec![0.2, 3.0, 7.0], snap.roles.as_ref().unwrap());
        assert_eq!(
            back.sd.as_ref().unwrap().query(&q, 5).unwrap(),
            snap.sd.as_ref().unwrap().query(&q, 5).unwrap()
        );
        assert_eq!(
            back.topk
                .as_ref()
                .unwrap()
                .query(1.0, 1.0, 1.0, 0.5, 2)
                .unwrap(),
            snap.topk
                .as_ref()
                .unwrap()
                .query(1.0, 1.0, 1.0, 0.5, 2)
                .unwrap()
        );
        assert_eq!(
            back.top1.as_ref().unwrap().query(0.0, 0.0),
            snap.top1.as_ref().unwrap().query(0.0, 0.0)
        );
        assert_eq!(back.dataset, snap.dataset);
        assert_eq!(back.roles, snap.roles);
        let engine = back.engine.as_ref().unwrap();
        assert_eq!(engine.shard_count(), 2);
        // Mutation state survives the round trip: delta rows, tombstones
        // and the answers that depend on both.
        assert_eq!(engine.delta_rows(), 2);
        assert_eq!(engine.tombstone_count(), 1);
        assert_eq!(
            engine.tombstone_ids(),
            snap.engine.as_ref().unwrap().tombstone_ids()
        );
        assert_eq!(
            engine.query(&q, 5).unwrap(),
            snap.engine.as_ref().unwrap().query(&q, 5).unwrap()
        );
        // Deterministic bytes.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn clean_engine_matches_monolithic_and_stays_v2() {
        let sd = sample_sd();
        let mut snap = Snapshot::new();
        snap.engine = Some(
            SdEngine::build_with(
                sd.data().clone(),
                sd.roles(),
                &sdq_engine::EngineOptions {
                    shards: 2,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let bytes = snap.to_bytes();
        assert_eq!(Snapshot::inspect_bytes(&bytes).unwrap().version, FORMAT_V2);
        let back = Snapshot::from_bytes(&bytes).unwrap();
        let engine = back.engine.as_ref().unwrap();
        assert!(!engine.has_mutations());
        let q = SdQuery::uniform_weights(vec![0.2, 3.0, 7.0], sd.roles());
        // A clean engine answers exactly like the monolithic index.
        assert_eq!(engine.query(&q, 5).unwrap(), sd.query(&q, 5).unwrap());
    }

    #[test]
    fn mutated_snapshot_is_version_3_and_compacted_drops_back_to_v2() {
        let snap = sample_snapshot();
        let bytes = snap.to_bytes();
        assert_eq!(Snapshot::inspect_bytes(&bytes).unwrap().version, FORMAT_V3);
        let mut back = Snapshot::from_bytes(&bytes).unwrap();
        back.engine.as_mut().unwrap().compact().unwrap();
        let compacted = back.to_bytes();
        assert_eq!(
            Snapshot::inspect_bytes(&compacted).unwrap().version,
            FORMAT_V2,
            "compaction removes the need for v3"
        );
    }

    #[test]
    fn mutation_sections_in_old_versions_are_rejected() {
        // Downgrading the version field of a v3 file must not silently
        // load (the version is deliberately outside the table CRC; the
        // section gating is the defence).
        for old in [FORMAT_V1, FORMAT_V2] {
            let mut bytes = sample_snapshot().to_bytes();
            bytes[8..12].copy_from_slice(&old.to_le_bytes());
            assert!(
                matches!(
                    Snapshot::from_bytes(&bytes).unwrap_err(),
                    SdError::SnapshotCorrupt { .. }
                ),
                "v{old} file with mutation sections loaded"
            );
        }
    }

    #[test]
    fn engineless_snapshots_stay_version_1() {
        let mut snap = sample_snapshot();
        snap.engine = None;
        let bytes = snap.to_bytes();
        let info = Snapshot::inspect_bytes(&bytes).unwrap();
        assert_eq!(info.version, FORMAT_V1);
        assert!(Snapshot::from_bytes(&bytes).unwrap().engine.is_none());
    }

    #[test]
    fn engine_sections_in_v1_are_rejected() {
        // Downgrading the version byte of a v2 file must not silently load.
        let mut bytes = sample_snapshot().to_bytes();
        assert_eq!(Snapshot::inspect_bytes(&bytes).unwrap().version, FORMAT_V3);
        bytes[8..12].copy_from_slice(&FORMAT_V1.to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(&bytes).unwrap_err(),
            SdError::SnapshotCorrupt { .. }
        ));
    }

    #[test]
    fn durability_section_bumps_to_v4_and_roundtrips() {
        let mut snap = sample_snapshot();
        snap.durability = Some(DurabilityInfo {
            generation: 7,
            checkpoint_epoch: 3,
        });
        let bytes = snap.to_bytes();
        assert_eq!(Snapshot::inspect_bytes(&bytes).unwrap().version, FORMAT_V4);
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back.durability, snap.durability);
        // Deterministic bytes survive the round trip.
        assert_eq!(back.to_bytes(), bytes);
        // Every flipped byte of a v4 file is still detected.
        for pos in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[pos] ^= 0x01;
            assert!(
                Snapshot::from_bytes(&mutated).is_err(),
                "flip at byte {pos} went undetected"
            );
        }
    }

    #[test]
    fn durability_section_in_old_versions_is_rejected() {
        let mut snap = Snapshot::new();
        snap.durability = Some(DurabilityInfo {
            generation: 1,
            checkpoint_epoch: 0,
        });
        let mut bytes = snap.to_bytes();
        for old in [FORMAT_V1, FORMAT_V2, FORMAT_V3] {
            bytes[8..12].copy_from_slice(&old.to_le_bytes());
            assert!(
                matches!(
                    Snapshot::from_bytes(&bytes).unwrap_err(),
                    SdError::SnapshotCorrupt { .. }
                ),
                "v{old} file with a durability section loaded"
            );
        }
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let bytes = Snapshot::new().to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn wrong_magic_is_typed() {
        let mut bytes = sample_snapshot().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Snapshot::from_bytes(&bytes).unwrap_err(),
            SdError::SnapshotBadMagic
        ));
        assert!(matches!(
            Snapshot::from_bytes(b"short").unwrap_err(),
            SdError::SnapshotBadMagic
        ));
    }

    #[test]
    fn future_version_is_typed() {
        let mut bytes = sample_snapshot().to_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(&bytes).unwrap_err(),
            SdError::SnapshotVersion {
                found: 99,
                supported: FORMAT_VERSION
            }
        ));
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let bytes = sample_snapshot().to_bytes();
        for pos in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[pos] ^= 0x01;
            let err = Snapshot::from_bytes(&mutated)
                .err()
                .unwrap_or_else(|| panic!("flip at byte {pos} went undetected"));
            assert!(
                matches!(
                    err,
                    SdError::SnapshotBadMagic
                        | SdError::SnapshotVersion { .. }
                        | SdError::SnapshotChecksum { .. }
                        | SdError::SnapshotCorrupt { .. }
                ),
                "flip at byte {pos}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn appended_garbage_is_detected() {
        // Bytes past the section table's accounted end are as suspect as
        // truncation (found by probing: `dd seek=<past-eof>` extended a
        // snapshot and the old parser silently ignored the tail).
        let mut bytes = sample_snapshot().to_bytes();
        bytes.extend_from_slice(b"tail");
        assert!(matches!(
            Snapshot::from_bytes(&bytes).unwrap_err(),
            SdError::SnapshotCorrupt { .. }
        ));
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample_snapshot().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Snapshot::from_bytes(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn save_load_via_file() {
        let dir = std::env::temp_dir().join(format!("sdq-store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.sdq");
        let snap = sample_snapshot();
        snap.save(&path).unwrap();
        let back = Snapshot::load(&path).unwrap();
        assert_eq!(back.to_bytes(), snap.to_bytes());

        let info = Snapshot::inspect(&path).unwrap();
        assert_eq!(info.version, FORMAT_V3);
        // 6 classic sections + engine manifest + 2 shard sections + delta
        // + tombstones.
        assert_eq!(info.sections.len(), 11);
        assert!(info.sections.iter().all(|s| s.kind.is_some()));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            Snapshot::load("/nonexistent/definitely/missing.sdq").unwrap_err(),
            SdError::SnapshotIo(_)
        ));
    }

    #[test]
    fn parse_roles_shorthand() {
        assert_eq!(
            parse_roles("aR").unwrap(),
            vec![DimRole::Attractive, DimRole::Repulsive]
        );
        assert!(parse_roles("ax").is_err());
    }

    // ── format v5 (zero-copy) ───────────────────────────────────────────

    /// Asserts both snapshots answer identically across every artifact.
    fn queries_match(a: &Snapshot, b: &Snapshot) {
        let roles = b.roles.clone().unwrap();
        let q = SdQuery::uniform_weights(vec![0.2, 3.0, 7.0], &roles);
        assert_eq!(
            a.sd.as_ref().unwrap().query(&q, 5).unwrap(),
            b.sd.as_ref().unwrap().query(&q, 5).unwrap()
        );
        assert_eq!(
            a.topk
                .as_ref()
                .unwrap()
                .query(1.0, 1.0, 1.0, 0.5, 2)
                .unwrap(),
            b.topk
                .as_ref()
                .unwrap()
                .query(1.0, 1.0, 1.0, 0.5, 2)
                .unwrap()
        );
        assert_eq!(
            a.top1.as_ref().unwrap().query(0.0, 0.0),
            b.top1.as_ref().unwrap().query(0.0, 0.0)
        );
        assert_eq!(
            a.engine.as_ref().unwrap().query(&q, 5).unwrap(),
            b.engine.as_ref().unwrap().query(&q, 5).unwrap()
        );
    }

    #[test]
    fn v5_roundtrips_owned() {
        let snap = sample_snapshot();
        let bytes = snap.to_bytes_v5().unwrap();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back.source_version, Some(FORMAT_V5));
        assert_eq!(back.preferred_format(), SnapshotFormat::V5);
        // Owned decode verifies everything eagerly; nothing stays mapped.
        assert!(!back.sd.as_ref().unwrap().is_mapped());
        queries_match(&back, &snap);
        assert_eq!(back.to_bytes_v5().unwrap(), bytes, "nondeterministic");
        // Layout discipline: 64-aligned payloads, table CRCs zero.
        let info = Snapshot::inspect_bytes(&bytes).unwrap();
        assert_eq!(info.version, FORMAT_V5);
        assert_eq!(info.sections.len(), 11);
        for s in &info.sections {
            assert_eq!(s.offset % REGION_ALIGN as u64, 0);
            assert_eq!(s.crc32, 0);
        }
    }

    #[test]
    fn v5_roundtrips_zero_copy() {
        let snap = sample_snapshot();
        let bytes = snap.to_bytes_v5().unwrap();
        let m = Snapshot::from_mapped(MappedBytes::copy_from(&bytes)).unwrap();
        assert_eq!(m.version(), FORMAT_V5);
        assert!(!m.regions().is_empty());
        assert!(m.snapshot.sd.as_ref().unwrap().is_mapped());
        queries_match(&m.snapshot, &snap);
        m.verify_all().unwrap();
        // A mapped snapshot re-encodes to the identical file.
        assert_eq!(m.snapshot.to_bytes_v5().unwrap(), bytes);
    }

    #[test]
    fn v5_crc_state_is_lazy_until_touched() {
        let snap = sample_snapshot();
        let bytes = snap.to_bytes_v5().unwrap();
        let m = Snapshot::from_mapped(MappedBytes::copy_from(&bytes)).unwrap();
        assert!(
            m.regions().iter().any(|r| r.state() == CrcState::Lazy),
            "open should defer array checksums"
        );
        let q = SdQuery::uniform_weights(vec![0.2, 3.0, 7.0], snap.roles.as_ref().unwrap());
        m.snapshot.sd.as_ref().unwrap().query(&q, 5).unwrap();
        assert!(m.regions().iter().any(|r| r.state() == CrcState::Verified));
        m.verify_all().unwrap();
        assert!(m.regions().iter().all(|r| r.state() == CrcState::Verified));
    }

    #[test]
    fn v5_every_flipped_byte_is_detected() {
        let bytes = sample_snapshot().to_bytes_v5().unwrap();
        for pos in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[pos] ^= 0x01;
            // The owned decode verifies eagerly: the flip surfaces at load.
            let err = Snapshot::from_bytes(&mutated)
                .err()
                .unwrap_or_else(|| panic!("flip at byte {pos} went undetected (owned)"));
            assert!(
                matches!(
                    err,
                    SdError::SnapshotBadMagic
                        | SdError::SnapshotVersion { .. }
                        | SdError::SnapshotChecksum { .. }
                        | SdError::SnapshotCorrupt { .. }
                ),
                "flip at byte {pos}: unexpected owned error {err:?}"
            );
            // The zero-copy open defers array checksums, but open +
            // verify_all must still catch every flip — typed, never UB.
            let err = match Snapshot::from_mapped(MappedBytes::copy_from(&mutated)) {
                Err(e) => e,
                Ok(m) => match m.verify_all() {
                    Err(e) => e,
                    Ok(()) => panic!("flip at byte {pos} went undetected (mapped)"),
                },
            };
            assert!(
                matches!(
                    err,
                    SdError::SnapshotBadMagic
                        | SdError::SnapshotVersion { .. }
                        | SdError::SnapshotChecksum { .. }
                        | SdError::SnapshotCorrupt { .. }
                ),
                "flip at byte {pos}: unexpected mapped error {err:?}"
            );
        }
    }

    #[test]
    fn v5_every_truncation_is_detected() {
        let bytes = sample_snapshot().to_bytes_v5().unwrap();
        for cut in 0..bytes.len() {
            assert!(
                Snapshot::from_bytes(&bytes[..cut]).is_err(),
                "owned: truncation to {cut} bytes went undetected"
            );
            assert!(
                Snapshot::from_mapped(MappedBytes::copy_from(&bytes[..cut])).is_err(),
                "mapped: truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn v5_rejects_misaligned_section() {
        // Shift section 0's payload offset off the 64-byte grid (fixing up
        // the table CRC so only the alignment rule is violated).
        let mut bytes = sample_snapshot().to_bytes_v5().unwrap();
        let n = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let off_at = 16 + 8;
        let old = u64::from_le_bytes(bytes[off_at..off_at + 8].try_into().unwrap());
        bytes[off_at..off_at + 8].copy_from_slice(&(old + 8).to_le_bytes());
        let table_end = 16 + TABLE_ENTRY_BYTES * n;
        let crc = crc32(&bytes[16..table_end]);
        bytes[table_end..table_end + 4].copy_from_slice(&crc.to_le_bytes());
        for result in [
            Snapshot::from_bytes(&bytes),
            Snapshot::from_mapped(MappedBytes::copy_from(&bytes)).map(|m| m.snapshot),
        ] {
            match result {
                Err(SdError::SnapshotCorrupt { detail }) => {
                    assert!(detail.contains("aligned"), "wrong detail: {detail}")
                }
                other => panic!("misaligned section accepted: {other:?}"),
            }
        }
    }

    #[test]
    fn open_mapped_reads_legacy_files() {
        let snap = sample_snapshot();
        let bytes = snap.to_bytes();
        let m = Snapshot::from_mapped(MappedBytes::copy_from(&bytes)).unwrap();
        assert_eq!(m.version(), FORMAT_V3);
        assert!(m.regions().is_empty());
        m.verify_all().unwrap();
        assert_eq!(m.snapshot.preferred_format(), SnapshotFormat::Legacy);
        queries_match(&m.snapshot, &snap);
    }

    #[test]
    fn mapped_engine_accepts_mutations() {
        let snap = sample_snapshot();
        let bytes = snap.to_bytes_v5().unwrap();
        let mut m = Snapshot::from_mapped(MappedBytes::copy_from(&bytes)).unwrap();
        let mut owned = Snapshot::from_bytes(&bytes).unwrap();
        let roles = snap.roles.clone().unwrap();
        let q = SdQuery::uniform_weights(vec![0.2, 3.0, 7.0], &roles);
        for s in [&mut m.snapshot, &mut owned] {
            let e = s.engine.as_mut().unwrap();
            e.insert(&[0.9, 2.0, 3.0]).unwrap();
            assert!(e.delete(sdq_core::PointId::new(1)).unwrap());
        }
        assert_eq!(
            m.snapshot.engine.as_ref().unwrap().query(&q, 6).unwrap(),
            owned.engine.as_ref().unwrap().query(&q, 6).unwrap()
        );
        // The mutated mapped snapshot saves as v5 and reloads.
        assert_eq!(m.snapshot.preferred_format(), SnapshotFormat::V5);
        let rebytes = m.snapshot.to_bytes_v5().unwrap();
        let back = Snapshot::from_bytes(&rebytes).unwrap();
        assert_eq!(
            back.engine.as_ref().unwrap().query(&q, 6).unwrap(),
            owned.engine.as_ref().unwrap().query(&q, 6).unwrap()
        );
        // Compaction folds the mapped base + delta into fresh owned shards
        // (it renumbers ids, so compact the owned mirror too).
        let report = m.snapshot.engine.as_mut().unwrap().compact().unwrap();
        assert!(report.dropped_tombstones > 0 || report.merged_delta_rows > 0);
        owned.engine.as_mut().unwrap().compact().unwrap();
        assert_eq!(
            m.snapshot.engine.as_ref().unwrap().query(&q, 6).unwrap(),
            owned.engine.as_ref().unwrap().query(&q, 6).unwrap()
        );
    }

    #[test]
    fn mapped_topk_materializes_on_mutation() {
        let snap = sample_snapshot();
        let bytes = snap.to_bytes_v5().unwrap();
        let mut m = Snapshot::from_mapped(MappedBytes::copy_from(&bytes)).unwrap();
        let mut owned = Snapshot::from_bytes(&bytes).unwrap();
        for t in [
            m.snapshot.topk.as_mut().unwrap(),
            owned.topk.as_mut().unwrap(),
        ] {
            t.insert(2.5, 2.5).unwrap();
            assert!(t.delete(sdq_core::PointId::new(0)));
        }
        assert_eq!(
            m.snapshot
                .topk
                .as_ref()
                .unwrap()
                .query(1.0, 1.0, 1.0, 0.5, 2)
                .unwrap(),
            owned
                .topk
                .as_ref()
                .unwrap()
                .query(1.0, 1.0, 1.0, 0.5, 2)
                .unwrap()
        );
    }

    #[test]
    fn v5_empty_roundtrip() {
        let bytes = Snapshot::new().to_bytes_v5().unwrap();
        assert!(Snapshot::from_bytes(&bytes).unwrap().is_empty());
        let m = Snapshot::from_mapped(MappedBytes::copy_from(&bytes)).unwrap();
        assert!(m.snapshot.is_empty());
        m.verify_all().unwrap();
    }

    #[test]
    fn save_v5_and_open_mapped_via_file() {
        let dir = std::env::temp_dir().join(format!("sdq-store-v5-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample-v5.sdq");
        let snap = sample_snapshot();
        snap.save_v5(&path).unwrap();
        let m = Snapshot::open_mapped(&path).unwrap();
        assert!(m.is_mapped(), "a real file should arrive via mmap");
        assert_eq!(m.version(), FORMAT_V5);
        queries_match(&m.snapshot, &snap);
        m.verify_all().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
