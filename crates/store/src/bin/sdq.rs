//! `sdq` — build, persist, inspect, query and *mutate* SD-Query snapshots.
//!
//! The build-once/query-many workflow, plus the write path:
//!
//! ```text
//! sdq build --synthetic uniform --n 100000 --dims 4 --roles arra --out idx.sdq
//! sdq query idx.sdq --point 0.5,0.5,0.5,0.5 --k 10
//! sdq insert idx.sdq --csv new_rows.csv
//! sdq delete idx.sdq --ids 17,42
//! sdq compact idx.sdq
//! sdq inspect idx.sdq
//! sdq bench-load idx.sdq
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use sdq_core::geometry::Angle;
use sdq_core::multidim::{resolve_threads, PairingStrategy, QueryPlan, SdIndex, SdIndexOptions};
use sdq_core::telemetry::{EventKind, EventRecord, HistoSnapshot, Telemetry};
use sdq_core::top1::Top1Index;
use sdq_core::topk::{default_angles, TopKIndex};
use sdq_core::{Dataset, Deadline, DimRole, QueryProfile, QueryScratch, ScoredPoint, SdQuery};
use sdq_data::{generate, uniform_queries, Distribution};
use sdq_engine::{
    floor_slot_label, CompactionOptions, EngineMetrics, EngineOptions, EngineScratch,
    MetricsSnapshot, SdEngine,
};
use sdq_rstar::RStarTree;
use sdq_store::{
    parse_roles, run_chaos, scrub_path, wal, ChaosConfig, DiskStorage, DurableEngine,
    DurableOptions, ScrubReport, SectionKind, Snapshot, SnapshotFormat, SyncPolicy,
};

const USAGE: &str = "\
sdq — SD-Query snapshot tool (build once, query many)

USAGE:
    sdq build --out PATH (--csv FILE | --synthetic DIST --n N --dims D)
              --roles STR [--shards S] [--seed S] [--index LIST]
              [--branching B] [--angles N] [--pairing arbitrary|correlation]
              [--alpha A] [--beta B] [--k K] [--format v5|legacy]
    sdq query PATH --point X,Y,... [--weights W,W,...] [--k K]
              [--repeat N] [--threads T] [--mapped] [--slow-query-us U]
              [--timeout-us U] [--explain | --profile | --profile-json]
    sdq insert PATH --csv FILE [--out PATH2 | --wal [--sync-every N]]
    sdq delete PATH --ids N,N,... [--out PATH2 | --wal [--sync-every N]]
    sdq compact PATH [--rebalance-factor F] [--shards S]
              [--out PATH2 | --wal]
    sdq recover PATH [--json]
    sdq scrub PATH [--repair] [--json]
    sdq chaos [--seed S] [--ops N] [--json]
    sdq wal-stress PATH --rows N [--sync-every N] [--seed S]
    sdq inspect PATH [--json]
    sdq metrics PATH [--prometheus | --json] [--queries N] [--k K]
              [--mutate N] [--compact] [--slow-query-us U] [--seed S]
    sdq events PATH [--json] [--follow] [--queries N] [--k K]
              [--mutate N] [--compact] [--slow-query-us U] [--seed S]
    sdq bench-load PATH [--iters N] [--json-out FILE]
    sdq bench-query (PATH | --synthetic DIST --n N --dims D --roles STR)
              [--shards S] [--k K] [--queries Q] [--warmup N] [--threads LIST]
              [--seed S] [--mutate-frac F] [--slow-query-us U]
              [--timeout-us U] [--raw] [--out FILE]

SUBCOMMANDS:
    build        Generate or load a dataset, build the requested indexes and
                 write one snapshot file.
    query        Load a snapshot and answer a top-k SD-Query from it.
    insert       Append rows (CSV file or '-' for stdin) to the engine's
                 delta region and rewrite the snapshot (format v3).
    delete       Tombstone rows by global id and rewrite the snapshot.
    compact      Fold the delta region into the shards, drop tombstones,
                 bump the engine epoch and rewrite the snapshot. With
                 --wal this also rotates the log (a durable checkpoint).
    recover      Open a WAL-backed snapshot, replay the log (truncating a
                 torn tail), checkpoint, and report what was recovered.
                 Exits 0 when recovery ran, 3 when the snapshot is not
                 WAL-backed (nothing to recover), 1 when the pair is too
                 damaged to open. --json prints one machine-readable
                 object on stdout.
    scrub        Force-verify every CRC-protected region of the snapshot
                 and its WAL sidecar, reporting each failure. --repair
                 additionally truncates a torn WAL tail, promotes a valid
                 interrupted-checkpoint temp file over a corrupt snapshot,
                 and quarantines (renames aside) anything unrecoverable.
                 Exits 0 when clean (or repaired), 1 when defects remain.
    chaos        Run a seeded randomized workload under randomized fault
                 injection (write failures, torn appends, crashes, EINTR
                 transients, ENOSPC/EIO) against an in-memory durable
                 engine, asserting the durability invariants after every
                 op: acked writes survive crashes, reads are never torn,
                 degraded mode is sticky until recovery, deadline queries
                 stay bounded. Exits 1 with the seed on any violation.
    wal-stress   Insert synthetic rows one by one through the WAL,
                 printing 'acked N' after each acknowledged write — the
                 kill -9 crash-smoke driver.
    inspect      Print the snapshot header, section table, artifact stats
                 and (for engines) the shard layout, per-shard delta and
                 tombstone pressure, and the planner decision. --json
                 renders the same facts machine-readably.
    metrics      Load a snapshot, run a small probe workload against it,
                 and render the engine's telemetry: latency histograms,
                 lifetime counters, per-shard floor provenance and the
                 event-journal status (human, --prometheus, or --json).
    events       Like metrics, but print the structured lifecycle event
                 journal itself (compactions, checkpoints, WAL rotations,
                 threshold crossings, slow queries). --follow streams
                 events while the probe workload runs on another thread.
    bench-load   Time snapshot load vs. in-memory index rebuild; for v5
                 snapshots, also eager owned decode vs. zero-copy
                 open_mapped cold start (--json-out merges a cold_start
                 key into the bench-query JSON report).
    bench-query  Measure query latency percentiles and batch QPS against a
                 snapshot's engine/sd-index (or an ad-hoc synthetic build)
                 and write a machine-readable BENCH_queries.json.

BUILD OPTIONS:
    --out PATH         Snapshot file to write (required).
    --csv FILE         Read rows from a comma-separated file (one row per
                       line; blank lines and '#' comments ignored).
    --synthetic DIST   Generate data: uniform | correlated | anti.
    --n N              Synthetic row count (default 10000).
    --dims D           Synthetic dimensionality (default 2).
    --seed S           Generator seed (default 42).
    --roles STR        One char per dimension: a(ttractive) | r(epulsive).
    --shards S         Shard the sd-index into an S-way engine (default 1;
                       S > 1 writes a format-v2 snapshot).
    --index LIST       Comma list of sd, topk, top1, rstar, all (default sd).
                       topk/top1 need exactly one 'a' and one 'r' dimension.
    --branching B      Tree branching factor (default 8).
    --angles N         Indexed angle count, uniform over [0°, 90°]
                       (default 5).
    --pairing P        SD-index pairing: arbitrary | correlation.
    --alpha A          top1: repulsive weight (default 1).
    --beta B           top1: attractive weight (default 1).
    --k K              top1: fixed k (default 1).
    --format F         Container format: v5 (zero-copy mmap-native, the
                       default) or legacy (v1-v4, readable by older builds).

MUTATION OPTIONS (insert / delete / compact):
    --csv FILE         Rows to insert, one comma-separated row per line
                       ('-' reads stdin; blank lines and '#' comments
                       ignored).
    --ids CSV          Global row ids to tombstone.
    --rebalance-factor F
                       Repartition evenly when a shard's live-row count
                       drifts past F × the ideal share (default 1.5).
    --shards S         Repartition into S shards while compacting.
    --out PATH2        Write the mutated snapshot here instead of rewriting
                       PATH in place.
    --wal              Write-ahead-log the mutation before applying it:
                       appends to PATH.wal (creating it — and upgrading the
                       snapshot to engine-only format v4 — on first use),
                       so an acknowledged write survives a crash. A
                       WAL-backed snapshot refuses non---wal mutations.
    --sync-every N     Group commit: fsync the WAL once every N records
                       instead of after each one (default 1 = every
                       record). An unsynced ack may be lost in a crash.

QUERY OPTIONS:
    --point CSV        Query point, one value per dimension (required).
    --weights CSV      Per-dimension weights (default: all 1).
    --k K              Result size (default 5).
    --repeat N         Answer the query N times (engine/sd-index snapshots
                       only) and print latency percentiles + QPS (default 1).
    --threads T        Worker threads for the repeated batch (default 1;
                       0 = auto: the host's available parallelism).
    --explain          Print the planner's per-pair strategy table (chosen
                       strategy + estimated cost) without running the query.
    --profile          Run the query once with per-stage timing and print
                       the execution counter tree plus the pruning funnel.
    --profile-json     Like --profile but machine-readable JSON on stdout.
    --mapped           Serve the query off an mmap of the file (v5
                       snapshots): no decode, checksums verified lazily on
                       the regions the query touches. Not for WAL-backed
                       snapshots (replay needs the owned path).
    --slow-query-us U  Journal any engine query at or above U microseconds
                       with its full execution profile, and report captured
                       slow queries on stderr (0 = off).
    --timeout-us U     Abort the query once U microseconds of budget are
                       spent (engine/sd-index snapshots; checked once per
                       aggregation round, so overrun is bounded by one
                       round). A tripped deadline exits 1 with a typed
                       'deadline exceeded' error. 0 = no deadline. With
                       --repeat each iteration gets a fresh budget; not
                       available with --threads > 1.

ROBUSTNESS OPTIONS (scrub / chaos):
    --repair           scrub: fix what can be fixed (truncate torn WAL
                       tails, promote valid .tmp checkpoints) and
                       quarantine the rest as <name>.quarantined.
    --seed S           chaos: the schedule seed (default 42); a failure
                       report names the seed that reproduces it.
    --ops N            chaos: operations to drive (default 1000).
    --json             Machine-readable report on stdout.

OBSERVABILITY OPTIONS (metrics / events):
    --queries N        Probe queries run against the loaded engine so the
                       histograms hold samples (default 32; 0 = none).
    --k K              Probe result size (default 5).
    --mutate N         Insert N synthetic rows and tombstone N/2 victims in
                       memory before rendering (the file is never touched).
    --compact          Compact in memory after the mutations (never saved).
    --slow-query-us U  Slow-query journaling threshold for the probe
                       queries, in microseconds (0 = off).
    --seed S           Probe workload seed (default 13).
    --prometheus       metrics: Prometheus text exposition format 0.0.4.
    --json             Machine-readable output (metrics: one object;
                       events: one JSON object per line).
    --follow           events: run the probe workload on a background
                       thread and stream events as they are journaled.

BENCH-QUERY OPTIONS:
    --shards S         Shard count for the measured engine (default 1).
                       Errors when it disagrees with a snapshot's own
                       engine manifest.
    --mutate-frac F    After the clean measurement, insert ⌈F·n⌉ synthetic
                       rows and tombstone ⌈F·n⌉ existing ones, re-measure
                       single-query latency, and add a 'mutations' key to
                       the JSON report (0 <= F < 1).
    --k K              Result size (default 16).
    --queries Q        Distinct uniform queries per measurement (default 256).
    --warmup N         Warm-up queries discarded before timing (default: one
                       full pass over the workload; 0 measures cold).
    --threads LIST     Comma list of batch worker counts, 0 = auto
                       (default 1,4,8).
    --seed S           Query-workload seed (default 13).
    --build-seed S     Synthetic dataset seed (default 42).
    --raw              Also report percentiles computed from the sorted
                       raw per-query samples (key single_query_ms_raw)
                       next to the default histogram extraction.
    --slow-query-us U  Journal timed queries at or above U microseconds;
                       the report counts them under slow_queries.
    --timeout-us U     Per-query deadline for the timed passes; deadline
                       aborts count under deadline_hits in the report
                       (0 = off, the default).
    --out FILE         JSON report path (default BENCH_queries.json).
    --synthetic/--n/--dims/--roles/--branching/--angles
                       Build an ad-hoc engine instead of loading PATH.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
        Err(CliError::Exit(code)) => ExitCode::from(code),
    }
}

enum CliError {
    /// Bad invocation: message + usage, exit code 2.
    Usage(String),
    /// Valid invocation that failed: message only, exit code 1.
    Runtime(String),
    /// The command already reported its outcome; exit with this code
    /// (`recover` uses 3 for "nothing to recover", `scrub` uses 1 for
    /// "defects found").
    Exit(u8),
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn runtime(msg: impl std::fmt::Display) -> CliError {
    CliError::Runtime(msg.to_string())
}

fn run(args: Vec<String>) -> Result<(), CliError> {
    let Some(cmd) = args.first() else {
        return Err(usage("missing subcommand"));
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "build" => cmd_build(rest),
        "query" => cmd_query(rest),
        "insert" => cmd_insert(rest),
        "delete" => cmd_delete(rest),
        "compact" => cmd_compact(rest),
        "recover" => cmd_recover(rest),
        "scrub" => cmd_scrub(rest),
        "chaos" => cmd_chaos(rest),
        "wal-stress" => cmd_wal_stress(rest),
        "inspect" => cmd_inspect(rest),
        "metrics" => cmd_metrics(rest),
        "events" => cmd_events(rest),
        "bench-load" => cmd_bench_load(rest),
        "bench-query" => cmd_bench_query(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(usage(format!("unknown subcommand {other:?}"))),
    }
}

/// Default top-k size for `sdq query` when `--k` is not given.
const DEFAULT_K: usize = 5;

// ─── flag parsing ───────────────────────────────────────────────────────────

/// Strict flag cursor: every argument must be consumed; unknown flags error.
struct Flags<'a> {
    args: &'a [String],
    pos: usize,
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Self {
        Flags { args, pos: 0 }
    }

    fn next(&mut self) -> Option<&'a str> {
        let a = self.args.get(self.pos)?;
        self.pos += 1;
        Some(a)
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, CliError> {
        self.next()
            .ok_or_else(|| usage(format!("{flag} needs a value")))
    }

    fn parsed<T: std::str::FromStr>(&mut self, flag: &str) -> Result<T, CliError> {
        let raw = self.value(flag)?;
        raw.parse()
            .map_err(|_| usage(format!("{flag}: cannot parse {raw:?}")))
    }
}

fn parse_csv_list(raw: &str, what: &str) -> Result<Vec<f64>, CliError> {
    raw.split(',')
        .map(|s| {
            s.trim()
                .parse::<f64>()
                .map_err(|_| usage(format!("{what}: cannot parse {s:?} as a number")))
        })
        .collect()
}

/// The uniform indexed-angle grid over [0°, 90°] shared by `build` and
/// `bench-query`; `count == 5` short-circuits to the library default.
fn angle_grid(count: usize) -> Result<Vec<Angle>, CliError> {
    if count < 2 {
        return Err(usage("--angles must be at least 2"));
    }
    if count == 5 {
        return Ok(default_angles());
    }
    Ok((0..count)
        .map(|i| {
            Angle::from_degrees(90.0 * i as f64 / (count - 1) as f64)
                .expect("grid angles are in range")
        })
        .collect())
}

// ─── build ──────────────────────────────────────────────────────────────────

#[derive(Clone, Copy, PartialEq, Eq)]
enum IndexKind {
    Sd,
    TopK,
    Top1,
    RStar,
}

fn cmd_build(args: &[String]) -> Result<(), CliError> {
    let mut out: Option<String> = None;
    let mut csv: Option<String> = None;
    let mut synthetic: Option<Distribution> = None;
    let mut n: usize = 10_000;
    let mut dims: usize = 2;
    let mut seed: u64 = 42;
    let mut roles_spec: Option<String> = None;
    let mut index_list = vec![IndexKind::Sd];
    let mut branching: usize = 8;
    let mut angle_count: usize = 5;
    let mut pairing = PairingStrategy::Arbitrary;
    let mut alpha: f64 = 1.0;
    let mut beta: f64 = 1.0;
    let mut k: usize = 1;
    let mut shards: usize = 1;
    let mut format = SnapshotFormat::V5;

    let mut all_requested = false;
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next() {
        match flag {
            "--out" => out = Some(flags.value("--out")?.to_string()),
            "--format" => {
                format = match flags.value("--format")? {
                    "v5" | "5" => SnapshotFormat::V5,
                    "legacy" | "v1" | "v2" | "v3" | "v4" => SnapshotFormat::Legacy,
                    other => return Err(usage(format!("--format: unknown format {other:?}"))),
                }
            }
            "--shards" => shards = flags.parsed("--shards")?,
            "--csv" => csv = Some(flags.value("--csv")?.to_string()),
            "--synthetic" => {
                synthetic = Some(match flags.value("--synthetic")? {
                    "uniform" => Distribution::Uniform,
                    "correlated" => Distribution::Correlated,
                    "anti" | "anti-correlated" => Distribution::AntiCorrelated,
                    other => {
                        return Err(usage(format!(
                            "--synthetic: unknown distribution {other:?}"
                        )))
                    }
                })
            }
            "--n" => n = flags.parsed("--n")?,
            "--dims" => dims = flags.parsed("--dims")?,
            "--seed" => seed = flags.parsed("--seed")?,
            "--roles" => roles_spec = Some(flags.value("--roles")?.to_string()),
            "--index" => {
                let raw = flags.value("--index")?;
                index_list.clear();
                for part in raw.split(',') {
                    match part.trim() {
                        "sd" => index_list.push(IndexKind::Sd),
                        "topk" => index_list.push(IndexKind::TopK),
                        "top1" => index_list.push(IndexKind::Top1),
                        "rstar" => index_list.push(IndexKind::RStar),
                        // `all` = every index the roles support; the 2-D
                        // kinds join below once the roles are known.
                        "all" => {
                            index_list = vec![IndexKind::Sd, IndexKind::RStar];
                            all_requested = true;
                        }
                        other => return Err(usage(format!("--index: unknown kind {other:?}"))),
                    }
                }
            }
            "--branching" => branching = flags.parsed("--branching")?,
            "--angles" => angle_count = flags.parsed("--angles")?,
            "--pairing" => {
                pairing = match flags.value("--pairing")? {
                    "arbitrary" => PairingStrategy::Arbitrary,
                    "correlation" | "correlation-aware" => PairingStrategy::CorrelationAware,
                    other => return Err(usage(format!("--pairing: unknown strategy {other:?}"))),
                }
            }
            "--alpha" => alpha = flags.parsed("--alpha")?,
            "--beta" => beta = flags.parsed("--beta")?,
            "--k" => k = flags.parsed("--k")?,
            other => return Err(usage(format!("unknown flag {other:?}"))),
        }
    }

    let out = out.ok_or_else(|| usage("build requires --out PATH"))?;
    // Flag validation before the (possibly expensive) dataset acquisition.
    if shards == 0 {
        return Err(usage("--shards must be at least 1"));
    }
    if shards > 1 && !index_list.contains(&IndexKind::Sd) {
        return Err(usage(
            "--shards applies to the sd index; add sd to --index (or drop --shards)",
        ));
    }
    let data = match (&csv, synthetic) {
        (Some(path), None) => read_csv_dataset(path)?,
        (None, Some(dist)) => generate(dist, n, dims, seed),
        (None, None) => return Err(usage("build needs --csv FILE or --synthetic DIST")),
        (Some(_), Some(_)) => return Err(usage("--csv and --synthetic are mutually exclusive")),
    };
    let roles_spec = roles_spec.ok_or_else(|| usage("build requires --roles STR"))?;
    let roles = parse_roles(&roles_spec).map_err(|_| {
        usage(format!(
            "--roles {roles_spec:?}: use one 'a' (attractive) or 'r' (repulsive) per dimension"
        ))
    })?;
    if roles.len() != data.dims() {
        return Err(usage(format!(
            "--roles {:?} names {} dimensions but the dataset has {}",
            roles_spec,
            roles.len(),
            data.dims()
        )));
    }
    if all_requested {
        if two_dim_axes(&roles).is_ok() {
            index_list.push(IndexKind::TopK);
            index_list.push(IndexKind::Top1);
        } else {
            println!("note: skipping topk/top1 (need exactly one attractive + one repulsive dim)");
        }
    }
    let angles = angle_grid(angle_count)?;

    println!(
        "dataset: {} rows × {} dims ({})",
        data.len(),
        data.dims(),
        csv.as_deref().unwrap_or("synthetic")
    );

    let mut snap = Snapshot::new();
    snap.dataset = Some(data.clone());
    snap.roles = Some(roles.clone());

    for kind in &index_list {
        match kind {
            IndexKind::Sd => {
                let options = SdIndexOptions {
                    pairing,
                    angles: angles.clone(),
                    branching,
                };
                if shards > 1 {
                    let engine_options = EngineOptions {
                        shards,
                        threads: 0,
                        index: options,
                    };
                    let (engine, ms) =
                        timed(|| SdEngine::build_with(data.clone(), &roles, &engine_options));
                    let engine = engine.map_err(runtime)?;
                    println!(
                        "built {}-shard engine in {ms:.1} ms (≈{} KiB resident)",
                        engine.shard_count(),
                        engine.memory_bytes() / 1024
                    );
                    snap.engine = Some(engine);
                } else {
                    let (index, ms) = timed(|| SdIndex::build_with(data.clone(), &roles, &options));
                    let index = index.map_err(runtime)?;
                    println!(
                        "built sd-index in {ms:.1} ms ({} pairs, {} unpaired dims)",
                        index.pairs().len(),
                        index.unpaired().len()
                    );
                    snap.sd = Some(index);
                }
            }
            IndexKind::TopK => {
                let (x, y) = two_dim_axes(&roles)?;
                let pts: Vec<(f64, f64)> = data.iter().map(|(_, c)| (c[x], c[y])).collect();
                let (index, ms) = timed(|| TopKIndex::build_with(&pts, &angles, branching));
                let index = index.map_err(runtime)?;
                println!(
                    "built topk-index in {ms:.1} ms ({} nodes)",
                    index.num_nodes()
                );
                snap.topk = Some(index);
            }
            IndexKind::Top1 => {
                let (x, y) = two_dim_axes(&roles)?;
                let pts: Vec<(f64, f64)> = data.iter().map(|(_, c)| (c[x], c[y])).collect();
                let (index, ms) = timed(|| Top1Index::build(&pts, alpha, beta, k));
                let index = index.map_err(runtime)?;
                println!("built top1-index in {ms:.1} ms (k = {k}, α = {alpha}, β = {beta})");
                snap.top1 = Some(index);
            }
            IndexKind::RStar => {
                let (tree, ms) =
                    timed(|| RStarTree::bulk_load(data.dims(), data.flat(), branching.max(4)));
                println!("built rstar-tree in {ms:.1} ms ({} points)", tree.len());
                snap.rstar = Some(tree);
            }
        }
    }

    // An engine-only snapshot already stores every row inside its shard
    // sections; a separate dataset section would double the file size.
    if snap.engine.is_some() && index_list == [IndexKind::Sd] {
        snap.dataset = None;
        println!("note: raw dataset section omitted (rows live in the engine shards)");
    }

    let (saved, save_ms) = timed(|| snap.save_as(&out, format));
    saved.map_err(runtime)?;
    let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    println!("wrote {out} ({bytes} bytes) in {save_ms:.1} ms");
    Ok(())
}

/// The single (attractive, repulsive) dimension pair required by the 2-D
/// indexes.
fn two_dim_axes(roles: &[DimRole]) -> Result<(usize, usize), CliError> {
    let att: Vec<usize> = roles
        .iter()
        .enumerate()
        .filter(|(_, r)| **r == DimRole::Attractive)
        .map(|(i, _)| i)
        .collect();
    let rep: Vec<usize> = roles
        .iter()
        .enumerate()
        .filter(|(_, r)| **r == DimRole::Repulsive)
        .map(|(i, _)| i)
        .collect();
    if att.len() == 1 && rep.len() == 1 {
        Ok((att[0], rep[0]))
    } else {
        Err(usage(
            "topk/top1 need exactly one attractive and one repulsive dimension",
        ))
    }
}

/// Reads CSV rows from a file, or stdin when `path` is `"-"`. Blank lines
/// and `#` comments are ignored.
fn read_csv_rows(path: &str) -> Result<Vec<Vec<f64>>, CliError> {
    let text = if path == "-" {
        std::io::read_to_string(std::io::stdin())
            .map_err(|e| runtime(format!("cannot read stdin: {e}")))?
    } else {
        std::fs::read_to_string(path).map_err(|e| runtime(format!("cannot read {path}: {e}")))?
    };
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let row: Result<Vec<f64>, _> = line
            .split(',')
            .map(|cell| cell.trim().parse::<f64>())
            .collect();
        let row = row.map_err(|e| runtime(format!("{path}:{}: {e}", lineno + 1)))?;
        rows.push(row);
    }
    Ok(rows)
}

fn read_csv_dataset(path: &str) -> Result<Dataset, CliError> {
    let rows = read_csv_rows(path)?;
    let dims = rows.first().map(Vec::len).unwrap_or(0);
    if dims == 0 {
        return Err(runtime(format!("{path}: no data rows")));
    }
    Dataset::from_rows(dims, &rows).map_err(runtime)
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

// ─── query ──────────────────────────────────────────────────────────────────

fn cmd_query(args: &[String]) -> Result<(), CliError> {
    let mut path: Option<&str> = None;
    let mut point: Option<Vec<f64>> = None;
    let mut weights: Option<Vec<f64>> = None;
    let mut k: Option<usize> = None;
    let mut repeat: usize = 1;
    let mut threads: usize = 1;
    let mut explain = false;
    let mut profile = false;
    let mut profile_json = false;
    let mut mapped = false;
    let mut slow_query_us: u64 = 0;
    let mut timeout_us: u64 = 0;

    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next() {
        match flag {
            "--point" => point = Some(parse_csv_list(flags.value("--point")?, "--point")?),
            "--weights" => weights = Some(parse_csv_list(flags.value("--weights")?, "--weights")?),
            "--k" => k = Some(flags.parsed("--k")?),
            "--repeat" => repeat = flags.parsed("--repeat")?,
            "--threads" => threads = flags.parsed("--threads")?,
            "--explain" => explain = true,
            "--profile" => profile = true,
            "--profile-json" => profile_json = true,
            "--mapped" => mapped = true,
            "--slow-query-us" => slow_query_us = flags.parsed("--slow-query-us")?,
            "--timeout-us" => timeout_us = flags.parsed("--timeout-us")?,
            other if !other.starts_with('-') && path.is_none() => path = Some(other),
            other => return Err(usage(format!("unknown flag {other:?}"))),
        }
    }
    let path = path.ok_or_else(|| usage("query needs a snapshot path"))?;
    let point = point.ok_or_else(|| usage("query requires --point"))?;
    if repeat == 0 {
        return Err(usage("--repeat must be at least 1"));
    }
    if (explain || profile || profile_json) && (repeat > 1 || threads != 1) {
        return Err(usage(
            "--explain/--profile observe one query; drop --repeat/--threads",
        ));
    }
    if timeout_us > 0 && threads != 1 {
        return Err(usage(
            "--timeout-us needs --threads 1 (the batch path carries no deadline)",
        ));
    }
    // --threads 0 = auto: resolve once so the printed worker count is the
    // real one, not "0 thread(s)".
    let threads = resolve_threads(threads);
    // The engine loaded below records into the process-global registry, so
    // arming the threshold here covers every serving mode (incl. --mapped).
    if slow_query_us > 0 {
        Telemetry::global().set_slow_query_micros(slow_query_us);
    }

    let (snap, load_ms) = if mapped {
        // A header-only (freshly rotated) log holds nothing to replay, so
        // mapped opens stay valid right after `sdq recover` / `compact --wal`.
        let pending_wal = std::fs::metadata(wal_sidecar(path))
            .map(|md| md.len() > sdq_store::wal::WAL_HEADER_BYTES as u64)
            .unwrap_or(false);
        if pending_wal {
            return Err(runtime(format!(
                "{path} has unreplayed WAL records; --mapped cannot replay the log (drop \
                 --mapped, or `sdq recover` first)"
            )));
        }
        let (m, ms) = timed(|| Snapshot::open_mapped(path));
        let m = m.map_err(runtime)?;
        if m.version() < sdq_store::FORMAT_V5 {
            eprintln!(
                "note: {path} is a format-v{} snapshot — decoded eagerly; rebuild (or \
                 compact) for a zero-copy v5 open",
                m.version()
            );
        }
        (Ok(m.snapshot), ms)
    } else {
        timed(|| load_query_snapshot(path))
    };
    let snap = snap?;

    // EXPLAIN / ANALYZE modes: the §5 planner and the execution profile
    // are only defined for the aggregation paths (engine or sd-index).
    if explain || profile || profile_json {
        let weights = weights.unwrap_or_else(|| vec![1.0; point.len()]);
        let query = SdQuery::new(point, weights).map_err(runtime)?;
        let k = k.unwrap_or(DEFAULT_K);
        if explain {
            let plans: Vec<QueryPlan> = if let Some(engine) = &snap.engine {
                engine.explain(&query, k).map_err(runtime)?
            } else if let Some(sd) = &snap.sd {
                vec![sd.plan(&query, k).map_err(runtime)?]
            } else {
                return Err(runtime(
                    "--explain needs an engine or sd-index snapshot (rebuild with --index sd)",
                ));
            };
            println!("loaded {path} in {load_ms:.1} ms");
            print_plan_table(&plans, k);
            return Ok(());
        }
        let (results, prof, live, wall_ms, layout) = if let Some(engine) = &snap.engine {
            let mut scratch = EngineScratch::new();
            scratch.profile.timing = true;
            scratch.deadline = Deadline::within_micros(timeout_us);
            let (r, ms) = timed(|| {
                engine
                    .query_with(&query, k, &mut scratch)
                    .map(<[ScoredPoint]>::to_vec)
            });
            (
                r.map_err(runtime)?,
                scratch.profile,
                engine.len() as u64,
                ms,
                format!("engine, {} shard(s)", engine.shard_count()),
            )
        } else if let Some(sd) = &snap.sd {
            let mut scratch = QueryScratch::new();
            scratch.profile.timing = true;
            scratch.deadline = Deadline::within_micros(timeout_us);
            let (r, ms) = timed(|| {
                sd.query_with(&query, k, &mut scratch)
                    .map(<[ScoredPoint]>::to_vec)
            });
            (
                r.map_err(runtime)?,
                scratch.profile,
                sd.data().len() as u64,
                ms,
                String::from("monolithic sd-index"),
            )
        } else {
            return Err(runtime(
                "--profile needs an engine or sd-index snapshot (rebuild with --index sd)",
            ));
        };
        if profile_json {
            let floor = snap.engine.as_ref().map(|e| e.metrics().snapshot());
            print!(
                "{}",
                profile_json_string(&prof, live, k, wall_ms, floor.as_ref())
            );
            report_slow_queries(slow_query_us);
            return Ok(());
        }
        println!("loaded {path} in {load_ms:.1} ms");
        print_profile(&prof, live, k, wall_ms, &layout);
        print_results(&results);
        report_slow_queries(slow_query_us);
        return Ok(());
    }

    // The 2-D indexes were built with x = the attractive dimension and
    // y = the repulsive one, in whatever order the roles named them; map the
    // user's dataset-ordered --point/--weights through the stored roles.
    let two_dim_mapping = |what: &str| -> Result<(usize, usize), CliError> {
        match &snap.roles {
            Some(roles) => two_dim_axes(roles),
            None => Err(runtime(format!(
                "snapshot stores a {what} but no roles section; cannot map --point axes"
            ))),
        }
    };

    if timeout_us > 0 && snap.engine.is_none() && snap.sd.is_none() {
        return Err(usage(
            "--timeout-us needs a snapshot with an engine or sd-index (rebuild with --index sd)",
        ));
    }

    let results = if let Some(engine) = &snap.engine {
        let weights = weights.unwrap_or_else(|| vec![1.0; point.len()]);
        let query = SdQuery::new(point, weights).map_err(runtime)?;
        let k = k.unwrap_or(DEFAULT_K);
        if repeat > 1 || threads != 1 {
            let mut scratch = EngineScratch::new();
            serve_repeated(
                &format!("engine ({} shards), repeat", engine.shard_count()),
                &query,
                repeat,
                threads,
                |q, collect| {
                    // A fresh budget per iteration: the deadline clock
                    // starts at construction.
                    scratch.deadline = Deadline::within_micros(timeout_us);
                    let res = engine.query_with(q, k, &mut scratch).map_err(runtime)?;
                    Ok(collect.then(|| res.to_vec()))
                },
                |qs| {
                    engine.par_query_batch(qs, k, threads).map_err(runtime)?;
                    Ok(())
                },
            )?
        } else {
            let mut scratch = EngineScratch::new();
            scratch.deadline = Deadline::within_micros(timeout_us);
            engine
                .query_with(&query, k, &mut scratch)
                .map(<[ScoredPoint]>::to_vec)
                .map_err(runtime)?
        }
    } else if let Some(sd) = &snap.sd {
        let weights = weights.unwrap_or_else(|| vec![1.0; point.len()]);
        let query = SdQuery::new(point, weights).map_err(runtime)?;
        let k = k.unwrap_or(DEFAULT_K);
        if repeat > 1 || threads != 1 {
            let mut scratch = QueryScratch::new();
            serve_repeated(
                "repeat",
                &query,
                repeat,
                threads,
                |q, collect| {
                    scratch.deadline = Deadline::within_micros(timeout_us);
                    let res = sd.query_with(q, k, &mut scratch).map_err(runtime)?;
                    Ok(collect.then(|| res.to_vec()))
                },
                |qs| {
                    sd.par_query_batch(qs, k, threads).map_err(runtime)?;
                    Ok(())
                },
            )?
        } else {
            let mut scratch = QueryScratch::new();
            scratch.deadline = Deadline::within_micros(timeout_us);
            sd.query_with(&query, k, &mut scratch)
                .map(<[ScoredPoint]>::to_vec)
                .map_err(runtime)?
        }
    } else if repeat > 1 || threads != 1 {
        return Err(usage(
            "--repeat/--threads need a snapshot with an engine or sd-index (rebuild with --index sd)",
        ));
    } else if let Some(topk) = &snap.topk {
        if point.len() != 2 {
            return Err(usage(
                "this snapshot holds a 2-D topk-index; --point needs 2 values",
            ));
        }
        let w = weights.unwrap_or_else(|| vec![1.0, 1.0]);
        if w.len() != 2 {
            return Err(usage("--weights needs 2 values for a topk-index"));
        }
        let (att, rep) = two_dim_mapping("topk-index")?;
        let (alpha, beta) = (w[rep], w[att]);
        topk.query(point[att], point[rep], alpha, beta, k.unwrap_or(DEFAULT_K))
            .map_err(runtime)?
    } else if let Some(top1) = &snap.top1 {
        if point.len() != 2 {
            return Err(usage(
                "this snapshot holds a 2-D top1-index; --point needs 2 values",
            ));
        }
        // The §3 index answers with its build-time k, α, β only.
        let (alpha, beta) = top1.weights();
        if weights.is_some() {
            eprintln!(
                "note: top1-index has fixed weights (α = {alpha}, β = {beta}); ignoring --weights"
            );
        }
        if let Some(k) = k {
            if k != top1.k() {
                eprintln!(
                    "note: top1-index has fixed k = {}; ignoring --k {k}",
                    top1.k()
                );
            }
        }
        let (att, rep) = two_dim_mapping("top1-index")?;
        top1.query(point[att], point[rep])
    } else {
        return Err(runtime(
            "snapshot holds no queryable index (only raw data?); rebuild with --index",
        ));
    };

    println!("loaded {path} in {load_ms:.1} ms");
    print_results(&results);
    report_slow_queries(slow_query_us);
    Ok(())
}

/// Reports every slow query the probe armed via `--slow-query-us` captured
/// in the journal, on stderr so machine-readable stdout stays clean.
fn report_slow_queries(slow_query_us: u64) {
    if slow_query_us == 0 {
        return;
    }
    let journal = &Telemetry::global().journal;
    for rec in journal.snapshot() {
        if let EventKind::SlowQuery {
            wall_micros,
            k,
            threshold_micros,
            profile,
        } = rec.kind
        {
            eprintln!(
                "slow-query: {wall_micros} µs ≥ {threshold_micros} µs (k {k}): \
                 {} block(s) popped, {} floor-pruned, {} row(s) fetched, {} scored, {} emitted",
                profile.blocks_popped,
                profile.blocks_floor_pruned,
                profile.rows_fetched,
                profile.points_scored,
                profile.emitted
            );
        }
    }
}

/// The ranked answer table shared by the plain and `--profile` query paths.
fn print_results(results: &[ScoredPoint]) {
    println!("top-{}:", results.len());
    println!("  {:>4}  {:>10}  {:>14}", "rank", "point", "sd-score");
    for (rank, sp) in results.iter().enumerate() {
        println!(
            "  {:>4}  {:>10}  {:>14.6}",
            rank + 1,
            sp.id.to_string(),
            sp.score
        );
    }
}

/// `--explain`: the planner's per-pair decision table, one row per 2-D
/// subproblem per shard, without executing anything.
fn print_plan_table(plans: &[QueryPlan], k: usize) {
    println!("planner decisions (k = {k}):");
    println!(
        "  {:>5}  {:<16} {:<20} {:>12}",
        "shard", "pair", "strategy", "est. cost"
    );
    for (i, plan) in plans.iter().enumerate() {
        for p in &plan.pairs {
            let strategy = if plan.direct {
                format!("direct {}", p.action.name())
            } else {
                p.action.name().to_string()
            };
            println!(
                "  {:>5}  {:<16} {:<20} {:>12.0}",
                i,
                format!("(d{} r, d{} a)", p.repulsive, p.attractive),
                strategy,
                p.est_cost
            );
        }
        if plan.unpaired_streams > 0 {
            println!(
                "  {:>5}  {:<16} {:<20} {:>12}",
                i,
                "unpaired",
                format!("{} × 1d-stream", plan.unpaired_streams),
                "-"
            );
        }
    }
    println!("  (costs in candidate-handling units; the query was not executed)");
}

/// `--profile`: the execution counter tree, the pruning funnel and — when
/// timing ran — the per-stage wall-clock split.
fn print_profile(p: &QueryProfile, live_points: u64, k: usize, wall_ms: f64, layout: &str) {
    let isa = if p.isa.is_empty() { "(none)" } else { p.isa };
    println!("profiled query ({layout}, k = {k}): {wall_ms:.3} ms wall, kernels {isa}");
    println!("counters:");
    println!(
        "  frontier   nodes_visited {} · envelope_nodes_rejected {}",
        p.nodes_visited, p.envelope_nodes_rejected
    );
    println!(
        "  blocks     popped {} · floor_pruned {} · lanes_masked {}",
        p.blocks_popped, p.blocks_floor_pruned, p.lanes_masked
    );
    println!(
        "  streams    tree_rows {} · onedim_rows {} · rounds {}",
        p.tree_rows_pulled, p.onedim_rows_pulled, p.rounds
    );
    println!(
        "  scoring    rows_fetched {} · gathered {} · scored {} · kernel_batches {}",
        p.rows_fetched, p.points_gathered, p.points_scored, p.kernel_batches
    );
    println!(
        "  dedup      seen_hits {} · tombstones_skipped {}",
        p.seen_hits, p.tombstones_skipped
    );
    println!(
        "  delta      rows_scanned {} · blocks_pruned {}",
        p.delta_rows_scanned, p.delta_blocks_pruned
    );
    let floor = if p.floor_value.is_finite() {
        format!("{:.6}", p.floor_value)
    } else {
        String::from("-inf")
    };
    println!("  floor      updates {} · final {floor}", p.floor_updates);
    println!(
        "  merge      rounds {} · emitted {}",
        p.merge_rounds, p.emitted
    );
    println!("pruning funnel:");
    let funnel = p.funnel(live_points);
    let base = funnel[0].1.max(1) as f64;
    for (stage, pts) in funnel {
        println!(
            "  {:<24} {:>12}  {:>7.2}%",
            stage,
            pts,
            100.0 * pts as f64 / base
        );
    }
    if p.timing {
        println!(
            "timings: delta scan {} ns · aggregate {} ns · merge {} ns",
            p.delta_scan_nanos, p.aggregate_nanos, p.merge_nanos
        );
    }
}

/// `--profile-json`: the whole profile machine-readably — every counter,
/// the funnel and the stage timings. `floor_value` is `null` until k real
/// scores exist (JSON has no `-inf`). `metrics` adds the per-shard
/// floor-provenance histogram (engine snapshots only): which shard slots
/// raised the shared k-th-score floor while this process served queries.
fn profile_json_string(
    p: &QueryProfile,
    live_points: u64,
    k: usize,
    wall_ms: f64,
    metrics: Option<&MetricsSnapshot>,
) -> String {
    let funnel: Vec<String> = p
        .funnel(live_points)
        .iter()
        .map(|(stage, pts)| format!("{{\"stage\": {}, \"points\": {pts}}}", json_str(stage)))
        .collect();
    let floor = if p.floor_value.is_finite() {
        format!("{}", p.floor_value)
    } else {
        String::from("null")
    };
    let floor_contributions = metrics
        .map(floor_contributions_json)
        .unwrap_or_else(|| String::from("{}"));
    format!(
        "{{\n  \"k\": {k},\n  \"wall_ms\": {wall_ms:.4},\n  \"isa\": {isa},\n  \
         \"counters\": {{\n    \
         \"nodes_visited\": {}, \"envelope_nodes_rejected\": {},\n    \
         \"blocks_popped\": {}, \"blocks_floor_pruned\": {}, \"lanes_masked\": {},\n    \
         \"tree_rows_pulled\": {}, \"onedim_rows_pulled\": {}, \"rows_fetched\": {},\n    \
         \"points_gathered\": {}, \"points_scored\": {}, \"kernel_batches\": {},\n    \
         \"delta_rows_scanned\": {}, \"delta_blocks_pruned\": {}, \"tombstones_skipped\": {},\n    \
         \"seen_hits\": {}, \"floor_updates\": {}, \"rounds\": {}, \"merge_rounds\": {},\n    \
         \"emitted\": {}\n  }},\n  \
         \"floor_value\": {floor},\n  \
         \"floor_contributions\": {floor_contributions},\n  \
         \"funnel\": [{funnel}],\n  \
         \"timings_nanos\": {{\"delta_scan\": {}, \"aggregate\": {}, \"merge\": {}}}\n}}\n",
        p.nodes_visited,
        p.envelope_nodes_rejected,
        p.blocks_popped,
        p.blocks_floor_pruned,
        p.lanes_masked,
        p.tree_rows_pulled,
        p.onedim_rows_pulled,
        p.rows_fetched,
        p.points_gathered,
        p.points_scored,
        p.kernel_batches,
        p.delta_rows_scanned,
        p.delta_blocks_pruned,
        p.tombstones_skipped,
        p.seen_hits,
        p.floor_updates,
        p.rounds,
        p.merge_rounds,
        p.emitted,
        p.delta_scan_nanos,
        p.aggregate_nanos,
        p.merge_nanos,
        isa = json_str(p.isa),
        funnel = funnel.join(", "),
    )
}

/// The per-shard floor-provenance histogram as a JSON object keyed by the
/// engine's stable slot labels (`shard-0` … `shard-15+`).
fn floor_contributions_json(m: &MetricsSnapshot) -> String {
    let slots: Vec<String> = m
        .floor_contributions
        .iter()
        .enumerate()
        .map(|(slot, v)| format!("{}: {v}", json_str(&floor_slot_label(slot))))
        .collect();
    format!("{{{}}}", slots.join(", "))
}

// ─── insert / delete / compact ──────────────────────────────────────────────

// ─── durability helpers ─────────────────────────────────────────────────────

/// The WAL sidecar of snapshot `path` (`idx.sdq` → `idx.sdq.wal`).
fn wal_sidecar(path: &str) -> String {
    format!("{path}.wal")
}

/// Splits a snapshot path into a [`DiskStorage`] rooted at its parent
/// directory plus the bare file name the durable engine works with.
fn disk_parts(path: &str) -> Result<(DiskStorage, String), CliError> {
    let p = std::path::Path::new(path);
    let name = p
        .file_name()
        .ok_or_else(|| usage(format!("{path}: not a file path")))?
        .to_string_lossy()
        .into_owned();
    let dir = p.parent().unwrap_or_else(|| std::path::Path::new("."));
    let storage = DiskStorage::new(dir).map_err(|e| runtime(format!("{}: {e}", dir.display())))?;
    Ok((storage, name))
}

fn sync_policy(sync_every: u32) -> Result<SyncPolicy, CliError> {
    match sync_every {
        0 => Err(usage("--sync-every must be at least 1")),
        1 => Ok(SyncPolicy::Always),
        n => Ok(SyncPolicy::EveryN(n)),
    }
}

/// Opens snapshot `path` as a [`DurableEngine`], enabling the WAL on
/// first use: a snapshot that is not yet WAL-backed is promoted (sd-index
/// → single-shard engine if needed) and checkpointed to generation 1.
fn open_durable(path: &str, opts: DurableOptions) -> Result<DurableEngine, CliError> {
    let (storage, name) = disk_parts(path)?;
    let snap = Snapshot::load(path).map_err(runtime)?;
    if snap.durability.is_none() && !std::path::Path::new(&wal_sidecar(path)).exists() {
        let mut snap = snap;
        let engine = if let Some(engine) = snap.engine.take() {
            engine
        } else if let Some(sd) = snap.sd.take() {
            println!("note: promoting the sd-index to a single-shard engine");
            SdEngine::single(sd).map_err(runtime)?
        } else {
            return Err(runtime(
                "snapshot holds no engine or sd-index to mutate; rebuild with --index sd",
            ));
        };
        println!(
            "note: enabling the WAL — {path} becomes an engine-only v4 snapshot with a \
             {} sidecar",
            wal_sidecar(path)
        );
        return DurableEngine::create(storage, name, engine, opts).map_err(runtime);
    }
    let d = DurableEngine::open(storage, name, opts).map_err(runtime)?;
    let rec = d.recovery();
    if rec.truncated_bytes > 0 {
        eprintln!(
            "note: truncated a {}-byte torn tail off {}",
            rec.truncated_bytes,
            wal_sidecar(path)
        );
    }
    if rec.stale_wal_reset {
        eprintln!("note: discarded a stale pre-checkpoint WAL (its records were already applied)");
    }
    if rec.replayed_records > 0 {
        println!(
            "replayed {} wal record(s) from {}",
            rec.replayed_records,
            wal_sidecar(path)
        );
    }
    Ok(d)
}

/// Loads a snapshot for querying. A WAL-backed snapshot is opened through
/// the durable engine instead, so the answers include every acknowledged
/// write still sitting in the log (recovery also truncates a torn tail,
/// exactly as a serving restart would).
fn load_query_snapshot(path: &str) -> Result<Snapshot, CliError> {
    let mut snap = Snapshot::load(path).map_err(runtime)?;
    if snap.durability.is_some() || std::path::Path::new(&wal_sidecar(path)).exists() {
        let (storage, name) = disk_parts(path)?;
        let d = DurableEngine::open(storage, name, DurableOptions::default()).map_err(runtime)?;
        let rec = d.recovery();
        if rec.replayed_records > 0 {
            eprintln!(
                "note: replayed {} wal record(s) from {}",
                rec.replayed_records,
                wal_sidecar(path)
            );
        }
        snap.engine = Some(d.engine().clone());
    }
    Ok(snap)
}

/// Loads a snapshot for mutation: the engine when present, otherwise a
/// single-shard engine promoted from the sd-index (the snapshot upgrades to
/// an engine snapshot on save — format v2/v3).
fn load_mutable_engine(path: &str) -> Result<(Snapshot, SdEngine), CliError> {
    let mut snap = Snapshot::load(path).map_err(runtime)?;
    if snap.durability.is_some() || std::path::Path::new(&wal_sidecar(path)).exists() {
        return Err(runtime(format!(
            "{path} is WAL-backed; mutate it with --wal so the log and snapshot stay \
             in step"
        )));
    }
    if let Some(engine) = snap.engine.take() {
        return Ok((snap, engine));
    }
    if let Some(sd) = snap.sd.take() {
        println!("note: promoting the sd-index to a single-shard engine (snapshot becomes v2+)");
        return Ok((snap, SdEngine::single(sd).map_err(runtime)?));
    }
    Err(runtime(
        "snapshot holds no engine or sd-index to mutate; rebuild with --index sd",
    ))
}

/// Puts the mutated engine back and rewrites the snapshot atomically.
/// Sibling artifacts (raw dataset, monolithic indexes, baselines) are kept
/// verbatim but describe the *pre-mutation* rows, so their presence is
/// called out — the engine is the only artifact the write path maintains.
fn save_mutated(mut snap: Snapshot, engine: SdEngine, out: &str) -> Result<(), CliError> {
    let mut stale: Vec<&str> = Vec::new();
    if snap.dataset.is_some() {
        stale.push("dataset");
    }
    if snap.sd.is_some() {
        stale.push("sd-index");
    }
    if snap.topk.is_some() {
        stale.push("topk-index");
    }
    if snap.top1.is_some() {
        stale.push("top1-index");
    }
    if snap.rstar.is_some() {
        stale.push("rstar-tree");
    }
    if !stale.is_empty() {
        eprintln!(
            "warning: snapshot also stores [{}] — those sections still describe the \
             pre-mutation rows; only the engine reflects this write",
            stale.join(", ")
        );
    }
    snap.engine = Some(engine);
    // Preserve the on-disk format the snapshot was found in: a mutated v5
    // file stays v5 (verify-before-save guards mapped bytes), a legacy
    // file stays legacy so older readers keep working.
    let format = snap.preferred_format();
    let (saved, ms) = timed(|| snap.save_as(out, format));
    saved.map_err(runtime)?;
    let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    println!("wrote {out} ({bytes} bytes) in {ms:.1} ms");
    Ok(())
}

fn cmd_insert(args: &[String]) -> Result<(), CliError> {
    let mut path: Option<&str> = None;
    let mut csv: Option<String> = None;
    let mut out: Option<String> = None;
    let mut use_wal = false;
    let mut sync_every: u32 = 1;
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next() {
        match flag {
            "--csv" => csv = Some(flags.value("--csv")?.to_string()),
            "--out" => out = Some(flags.value("--out")?.to_string()),
            "--wal" => use_wal = true,
            "--sync-every" => sync_every = flags.parsed("--sync-every")?,
            other if !other.starts_with('-') && path.is_none() => path = Some(other),
            other => {
                return Err(usage(format!(
                    "unknown flag {other:?} (stdin rows are --csv -)"
                )))
            }
        }
    }
    let path = path.ok_or_else(|| usage("insert needs a snapshot path"))?;
    let csv = csv.ok_or_else(|| usage("insert requires --csv FILE (or --csv - for stdin)"))?;
    let rows = read_csv_rows(&csv)?;
    if rows.is_empty() {
        return Err(runtime(format!("{csv}: no data rows")));
    }
    if use_wal {
        if out.is_some() {
            return Err(usage("--wal logs against PATH in place; drop --out"));
        }
        let opts = DurableOptions {
            sync: sync_policy(sync_every)?,
        };
        let mut d = open_durable(path, opts)?;
        let (ids, ms) = timed(|| d.insert_rows(&rows));
        let ids = ids.map_err(runtime)?;
        let status = d.wal_status();
        println!(
            "inserted {} row(s) as {}..={} in {ms:.2} ms; wal: {} record(s) \
             ({} durable), {} byte(s) pending since checkpoint",
            ids.len(),
            ids.first().expect("non-empty batch"),
            ids.last().expect("non-empty batch"),
            status.records,
            status.durable_records,
            status.pending_bytes
        );
        return Ok(());
    }
    let (snap, mut engine) = load_mutable_engine(path)?;
    let (ids, ms) = timed(|| engine.insert_rows(&rows));
    let ids = ids.map_err(runtime)?;
    println!(
        "inserted {} row(s) as {}..={} in {ms:.2} ms; delta region now {} row(s)",
        ids.len(),
        ids.first().expect("non-empty batch"),
        ids.last().expect("non-empty batch"),
        engine.delta_rows()
    );
    save_mutated(snap, engine, out.as_deref().unwrap_or(path))
}

fn cmd_delete(args: &[String]) -> Result<(), CliError> {
    let mut path: Option<&str> = None;
    let mut ids: Option<Vec<usize>> = None;
    let mut out: Option<String> = None;
    let mut use_wal = false;
    let mut sync_every: u32 = 1;
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next() {
        match flag {
            "--ids" => {
                let raw = flags.value("--ids")?;
                ids = Some(
                    raw.split(',')
                        .map(|s| {
                            s.trim()
                                .parse::<usize>()
                                .map_err(|_| usage(format!("--ids: cannot parse {s:?}")))
                        })
                        .collect::<Result<_, _>>()?,
                );
            }
            "--out" => out = Some(flags.value("--out")?.to_string()),
            "--wal" => use_wal = true,
            "--sync-every" => sync_every = flags.parsed("--sync-every")?,
            other if !other.starts_with('-') && path.is_none() => path = Some(other),
            other => return Err(usage(format!("unknown flag {other:?}"))),
        }
    }
    let path = path.ok_or_else(|| usage("delete needs a snapshot path"))?;
    let ids = ids.ok_or_else(|| usage("delete requires --ids N,N,..."))?;
    if use_wal && out.is_some() {
        return Err(usage("--wal logs against PATH in place; drop --out"));
    }
    let to_u32 = |id: usize| {
        u32::try_from(id).map_err(|_| runtime(format!("row {id} out of range (ids are u32)")))
    };
    if use_wal {
        let opts = DurableOptions {
            sync: sync_policy(sync_every)?,
        };
        let mut d = open_durable(path, opts)?;
        let mut newly = 0usize;
        let mut already = 0usize;
        for id in ids {
            if d.delete(sdq_core::PointId::new(to_u32(id)?))
                .map_err(runtime)?
            {
                newly += 1;
            } else {
                already += 1;
            }
        }
        let status = d.wal_status();
        print!("tombstoned {newly} row(s)");
        if already > 0 {
            print!(" ({already} already dead)");
        }
        println!(
            "; wal: {} record(s) ({} durable), {} byte(s) pending since checkpoint",
            status.records, status.durable_records, status.pending_bytes
        );
        return Ok(());
    }
    let (snap, mut engine) = load_mutable_engine(path)?;
    let mut newly = 0usize;
    let mut already = 0usize;
    for id in ids {
        if engine
            .delete(sdq_core::PointId::new(to_u32(id)?))
            .map_err(runtime)?
        {
            newly += 1;
        } else {
            already += 1;
        }
    }
    print!("tombstoned {newly} row(s)");
    if already > 0 {
        print!(" ({already} already dead)");
    }
    println!(
        "; {} tombstone(s) pending over {} live row(s)",
        engine.tombstone_count(),
        engine.len()
    );
    save_mutated(snap, engine, out.as_deref().unwrap_or(path))
}

fn cmd_compact(args: &[String]) -> Result<(), CliError> {
    let mut path: Option<&str> = None;
    let mut out: Option<String> = None;
    let mut use_wal = false;
    let mut options = CompactionOptions::default();
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next() {
        match flag {
            "--rebalance-factor" => {
                options.rebalance_factor = flags.parsed("--rebalance-factor")?;
                if options.rebalance_factor.is_nan() || options.rebalance_factor < 1.0 {
                    return Err(usage("--rebalance-factor must be at least 1"));
                }
            }
            "--shards" => {
                let s: usize = flags.parsed("--shards")?;
                if s == 0 {
                    return Err(usage("--shards must be at least 1"));
                }
                options.shards = Some(s);
            }
            "--out" => out = Some(flags.value("--out")?.to_string()),
            "--wal" => use_wal = true,
            other if !other.starts_with('-') && path.is_none() => path = Some(other),
            other => return Err(usage(format!("unknown flag {other:?}"))),
        }
    }
    let path = path.ok_or_else(|| usage("compact needs a snapshot path"))?;
    if use_wal {
        if out.is_some() {
            return Err(usage("--wal logs against PATH in place; drop --out"));
        }
        let mut d = open_durable(path, DurableOptions::default())?;
        let (report, ms) = timed(|| d.compact_with(&options));
        let report = report.map_err(runtime)?;
        let status = d.wal_status();
        println!(
            "compacted in {ms:.1} ms: rebuilt {} shard(s), merged {} delta row(s), \
             dropped {} tombstone(s); checkpointed as generation {} (epoch {}), \
             wal rotated",
            report.rebuilt_shards,
            report.merged_delta_rows,
            report.dropped_tombstones,
            status.generation,
            status.last_checkpoint_epoch
        );
        return Ok(());
    }
    let (mut snap, mut engine) = load_mutable_engine(path)?;
    // Compaction rewrites every shard anyway — the natural point to
    // upgrade the container to the mmap-native format.
    if snap.preferred_format() == SnapshotFormat::Legacy {
        println!("note: compaction rewrites the container in format v5 (zero-copy)");
        snap.source_version = None;
    }
    let (report, ms) = timed(|| engine.compact_with(&options));
    let report = report.map_err(runtime)?;
    println!(
        "compacted in {ms:.1} ms ({} µs in-engine): rebuilt {} of {} shard(s){}, \
         moved {} row(s), merged {} delta row(s), dropped {} tombstone(s); \
         epoch {}, {} live row(s)",
        report.duration_micros,
        report.rebuilt_shards,
        engine.shard_count(),
        if report.rebalanced {
            " (rebalanced)"
        } else {
            ""
        },
        report.rows_moved,
        report.merged_delta_rows,
        report.dropped_tombstones,
        report.epoch,
        report.live_rows
    );
    save_mutated(snap, engine, out.as_deref().unwrap_or(path))
}

fn cmd_recover(args: &[String]) -> Result<(), CliError> {
    let mut path: Option<&str> = None;
    let mut json = false;
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next() {
        match flag {
            "--json" => json = true,
            other if !other.starts_with('-') && path.is_none() => path = Some(other),
            other => return Err(usage(format!("unknown flag {other:?}"))),
        }
    }
    let path = path.ok_or_else(|| usage("recover needs a snapshot path"))?;
    if !std::path::Path::new(&wal_sidecar(path)).exists() && !std::path::Path::new(path).exists() {
        return Err(runtime(format!("{path}: no such snapshot")));
    }

    // "Nothing to recover" (exit 3) must be decided *before* opening as
    // durable: open_durable would promote a plain snapshot to WAL-backed,
    // which is an upgrade the operator did not ask `recover` for.
    let wal_backed = std::path::Path::new(&wal_sidecar(path)).exists()
        || Snapshot::load(path).map_err(runtime)?.durability.is_some();
    if !wal_backed {
        if json {
            println!(
                "{{\"path\": {}, \"recovered\": false, \"reason\": \"not wal-backed\"}}",
                json_str(path)
            );
        } else {
            println!("{path}: not WAL-backed — nothing to recover");
        }
        return Err(CliError::Exit(3));
    }

    // Opening replays the log (truncating a torn tail); the checkpoint
    // folds the replayed state into the snapshot and starts a clean
    // generation. A pair too damaged to open errors out (exit 1).
    let (storage, name) = disk_parts(path)?;
    let mut d = DurableEngine::open(storage, name, DurableOptions::default()).map_err(runtime)?;
    let rec = d.recovery();
    d.checkpoint().map_err(runtime)?;
    let status = d.wal_status();
    if json {
        println!(
            "{{\"path\": {}, \"recovered\": true, \"records_replayed\": {}, \
             \"truncated_bytes\": {}, \"stale_wal_reset\": {}, \"live_rows\": {}, \
             \"generation\": {}, \"epoch\": {}}}",
            json_str(path),
            rec.replayed_records,
            rec.truncated_bytes,
            rec.stale_wal_reset,
            d.engine().len(),
            status.generation,
            status.last_checkpoint_epoch
        );
    } else {
        if rec.truncated_bytes > 0 {
            eprintln!(
                "note: truncated a {}-byte torn tail off {}",
                rec.truncated_bytes,
                wal_sidecar(path)
            );
        }
        if rec.stale_wal_reset {
            eprintln!(
                "note: discarded a stale pre-checkpoint WAL (its records were already applied)"
            );
        }
        println!(
            "recovered {path}: {} record(s) replayed, {} live row(s); checkpointed as \
             generation {} (epoch {})",
            rec.replayed_records,
            d.engine().len(),
            status.generation,
            status.last_checkpoint_epoch
        );
    }
    Ok(())
}

// ─── scrub / chaos ──────────────────────────────────────────────────────────

fn scrub_report_json(path: &str, repair: bool, r: &ScrubReport) -> String {
    let failures: Vec<String> = r
        .failures
        .iter()
        .map(|f| {
            format!(
                "{{\"region\": {}, \"offset\": {}, \"len\": {}, \"detail\": {}}}",
                json_str(&f.name),
                f.offset,
                f.len,
                json_str(&f.detail)
            )
        })
        .collect();
    let strings =
        |v: &[String]| -> String { v.iter().map(|s| json_str(s)).collect::<Vec<_>>().join(", ") };
    format!(
        "{{\n  \"path\": {},\n  \"repair\": {repair},\n  \"clean\": {},\n  \
         \"regions_ok\": {},\n  \"regions_failed\": {},\n  \"snapshot_version\": {},\n  \
         \"wal_records\": {},\n  \"wal_torn_bytes\": {},\n  \"failures\": [{}],\n  \
         \"repaired\": [{}],\n  \"quarantined\": [{}],\n  \"data_loss_possible\": {}\n}}",
        json_str(path),
        r.clean(),
        r.regions_ok,
        r.regions_failed,
        r.snapshot_version
            .map_or(String::from("null"), |v| v.to_string()),
        r.wal_records,
        r.wal_torn_bytes,
        failures.join(", "),
        strings(&r.repaired),
        strings(&r.quarantined),
        r.data_loss_possible
    )
}

fn cmd_scrub(args: &[String]) -> Result<(), CliError> {
    let mut path: Option<&str> = None;
    let mut repair = false;
    let mut json = false;
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next() {
        match flag {
            "--repair" => repair = true,
            "--json" => json = true,
            other if !other.starts_with('-') && path.is_none() => path = Some(other),
            other => return Err(usage(format!("unknown flag {other:?}"))),
        }
    }
    let path = path.ok_or_else(|| usage("scrub needs a snapshot path"))?;
    let report = scrub_path(path, repair).map_err(runtime)?;

    // After a repair, prove the pair actually serves again (and fold the
    // scrub tallies into that engine's metrics registry) — unless the
    // snapshot itself had to be quarantined, in which case there is
    // nothing left to open.
    let mut validated: Option<bool> = None;
    if repair && std::path::Path::new(path).is_file() {
        let (storage, name) = disk_parts(path)?;
        match DurableEngine::open(storage, name, DurableOptions::default()) {
            Ok(d) => {
                d.engine()
                    .metrics()
                    .record_scrub_regions(report.regions_ok, report.regions_failed);
                validated = Some(true);
            }
            Err(_) => validated = Some(false),
        }
    }

    if json {
        let body = scrub_report_json(path, repair, &report);
        match validated {
            Some(v) => {
                let trimmed = body.trim_end().trim_end_matches('}');
                println!(
                    "{},\n  \"validated\": {v}\n}}",
                    trimmed.trim_end_matches(',')
                );
            }
            None => println!("{body}"),
        }
    } else {
        println!(
            "scrubbed {path}: {} region(s) ok, {} failed{}",
            report.regions_ok,
            report.regions_failed,
            report
                .snapshot_version
                .map_or(String::new(), |v| format!(" (format v{v})"))
        );
        if report.wal_records > 0 || report.wal_torn_bytes > 0 {
            println!(
                "  wal: {} intact record(s), {} torn byte(s)",
                report.wal_records, report.wal_torn_bytes
            );
        }
        for f in &report.failures {
            println!(
                "  FAILED {} (offset {}, {} bytes): {}",
                f.name, f.offset, f.len, f.detail
            );
        }
        for r in &report.repaired {
            println!("  repaired: {r}");
        }
        for q in &report.quarantined {
            println!("  quarantined: {q}");
        }
        if report.data_loss_possible {
            println!("  WARNING: acknowledged writes may have been lost");
        }
        if let Some(v) = validated {
            println!(
                "  validation: {}",
                if v {
                    "repaired pair opens and serves"
                } else {
                    "repaired pair STILL does not open"
                }
            );
        }
        if report.clean() && !report.data_loss_possible {
            println!("clean");
        }
    }

    // Exit contract: 0 when the store is clean (or was just made clean by
    // --repair without losing data), 1 when defects remain or acked
    // writes may be gone.
    let healthy_now = if repair {
        report.quarantined.is_empty() && !report.data_loss_possible && validated != Some(false)
    } else {
        report.clean()
    };
    if healthy_now {
        Ok(())
    } else {
        Err(CliError::Exit(1))
    }
}

fn cmd_chaos(args: &[String]) -> Result<(), CliError> {
    let mut seed: u64 = 42;
    let mut ops: u64 = 1000;
    let mut json = false;
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next() {
        match flag {
            "--seed" => seed = flags.parsed("--seed")?,
            "--ops" => ops = flags.parsed("--ops")?,
            "--json" => json = true,
            other => return Err(usage(format!("unknown flag {other:?}"))),
        }
    }
    if ops == 0 {
        return Err(usage("--ops must be at least 1"));
    }
    let (report, ms) = timed(|| run_chaos(ChaosConfig { seed, ops }));
    let report = report.map_err(runtime)?;
    if json {
        println!(
            "{{\n  \"seed\": {seed},\n  \"ops\": {},\n  \"ops_acked\": {},\n  \
             \"faults_injected\": {},\n  \"crashes\": {},\n  \"degradations\": {},\n  \
             \"recoveries\": {},\n  \"probes\": {},\n  \"deadline_probes\": {},\n  \
             \"deadline_hits\": {},\n  \"retries\": {},\n  \"wall_ms\": {ms:.1}\n}}",
            report.ops_run,
            report.ops_acked,
            report.faults_injected,
            report.crashes,
            report.degradations,
            report.recoveries,
            report.probes,
            report.deadline_probes,
            report.deadline_hits,
            report.retries
        );
    } else {
        println!(
            "chaos (seed {seed}): {} op(s) in {ms:.1} ms — {} acked, {} fault(s) injected, \
             {} crash(es) survived, {} degradation(s) recovered, {} probe(s) bit-identical, \
             {} deadline probe(s) ({} tripped), {} transparent retry(ies)",
            report.ops_run,
            report.ops_acked,
            report.faults_injected,
            report.crashes,
            report.degradations,
            report.probes,
            report.deadline_probes,
            report.deadline_hits,
            report.retries
        );
        println!("all durability invariants held");
    }
    Ok(())
}

/// The kill -9 crash-smoke driver: inserts deterministic rows through the
/// WAL one at a time, printing (and flushing) `acked N` — the total
/// addressable row count — after each acknowledged write. A harness kills
/// the process mid-run, reopens with `sdq recover`, and checks the live
/// store holds at least the last acked count.
fn cmd_wal_stress(args: &[String]) -> Result<(), CliError> {
    let mut path: Option<&str> = None;
    let mut rows: usize = 0;
    let mut sync_every: u32 = 1;
    let mut seed: u64 = 42;
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next() {
        match flag {
            "--rows" => rows = flags.parsed("--rows")?,
            "--sync-every" => sync_every = flags.parsed("--sync-every")?,
            "--seed" => seed = flags.parsed("--seed")?,
            other if !other.starts_with('-') && path.is_none() => path = Some(other),
            other => return Err(usage(format!("unknown flag {other:?}"))),
        }
    }
    let path = path.ok_or_else(|| usage("wal-stress needs a snapshot path"))?;
    if rows == 0 {
        return Err(usage("wal-stress requires --rows N (N ≥ 1)"));
    }
    let opts = DurableOptions {
        sync: sync_policy(sync_every)?,
    };
    let mut d = if std::path::Path::new(path).exists() {
        open_durable(path, opts)?
    } else {
        // Bootstrap a tiny 2-D store so the stress can run from nothing.
        let base: Vec<Vec<f64>> = (0..16)
            .map(|i| vec![(i as f64 * 0.37).sin(), (i as f64 * 0.61).cos()])
            .collect();
        let data = Dataset::from_rows(2, &base).map_err(runtime)?;
        let engine =
            SdEngine::build(data, &parse_roles("ar").map_err(runtime)?).map_err(runtime)?;
        let (storage, name) = disk_parts(path)?;
        DurableEngine::create(storage, name, engine, opts).map_err(runtime)?
    };
    let dims = d.engine().dims();
    let mut state = seed;
    let mut coord = move || {
        // splitmix64 → [0, 1)
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    };
    use std::io::Write as _;
    let stdout = std::io::stdout();
    for _ in 0..rows {
        let row: Vec<f64> = (0..dims).map(|_| coord()).collect();
        d.insert(&row).map_err(runtime)?;
        // Under --sync-every N an ack only promises durability once the
        // group fsync lands; the harness reads the durable count.
        let status = d.wal_status();
        let mut lock = stdout.lock();
        writeln!(
            lock,
            "acked {} (durable records {})",
            d.engine().total_rows(),
            status.durable_records
        )
        .map_err(runtime)?;
        lock.flush().map_err(runtime)?;
    }
    let status = d.wal_status();
    println!(
        "wal-stress done: {} record(s) ({} durable), {} live row(s), generation {}",
        status.records,
        status.durable_records,
        d.engine().len(),
        status.generation
    );
    Ok(())
}

// ─── inspect ────────────────────────────────────────────────────────────────

fn cmd_inspect(args: &[String]) -> Result<(), CliError> {
    let mut path: Option<&str> = None;
    let mut json = false;
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next() {
        match flag {
            "--json" => json = true,
            other if !other.starts_with('-') && path.is_none() => path = Some(other),
            other => return Err(usage(format!("unknown flag {other:?}"))),
        }
    }
    let path = path.ok_or_else(|| usage("inspect needs a snapshot path"))?;
    if json {
        return inspect_json(path);
    }

    let info = Snapshot::inspect(path).map_err(runtime)?;
    println!(
        "{path}: snapshot format v{} ({} bytes)",
        info.version, info.file_len
    );
    let v5 = info.version >= sdq_store::FORMAT_V5;
    println!(
        "  {:<16} {:>10} {:>12}  {:>10}",
        "section", "offset", "bytes", "crc32"
    );
    for s in &info.sections {
        let name = s.kind.map(SectionKind::name).unwrap_or("<unknown>");
        println!(
            "  {:<16} {:>10} {:>12}  {:>10}",
            name,
            s.offset,
            s.len,
            if v5 {
                // v5 table entries carry no CRC; integrity lives in the
                // per-region CRC-32C headers below.
                String::from("(regions)")
            } else {
                format!("{:08x}", s.crc32)
            }
        );
    }

    // v5: the framed regions inside the sections — the things `open_mapped`
    // serves in place. State shows the lazy-checksum semantics: metadata
    // regions verify at open, array regions on first touch.
    if v5 {
        let m = Snapshot::open_mapped(path).map_err(runtime)?;
        println!(
            "  {:<28} {:>10} {:>12}  {:>6} {:>10}  state",
            "region", "offset", "bytes", "align", "crc32c"
        );
        for r in m.regions() {
            let align = if r.file_offset() % 64 == 0 {
                "64B"
            } else {
                "-"
            };
            println!(
                "  {:<28} {:>10} {:>12}  {:>6} {:>10}  {}",
                r.name(),
                r.file_offset(),
                r.len(),
                align,
                format!("{:08x}", r.expected_crc()),
                r.state().label()
            );
        }
    }

    // Decode for artifact-level stats (also verifies all checksums).
    let snap = Snapshot::load(path).map_err(runtime)?;
    if let Some(d) = &snap.dataset {
        println!("  dataset: {} rows × {} dims", d.len(), d.dims());
    }
    if let Some(r) = &snap.roles {
        let spec: String = r
            .iter()
            .map(|role| match role {
                DimRole::Attractive => 'a',
                DimRole::Repulsive => 'r',
            })
            .collect();
        println!("  roles: {spec}");
    }
    if let Some(sd) = &snap.sd {
        println!(
            "  sd-index: {} rows, {} pairs, {} unpaired, ≈{} KiB resident",
            sd.data().len(),
            sd.pairs().len(),
            sd.unpaired().len(),
            sd.memory_bytes() / 1024
        );
        let stats = sd.block_stats();
        print_block_stats("    ", blocks_covered(std::iter::once(sd)), stats);
        let sample = mean_query(std::iter::once(sd.data())).map_err(runtime)?;
        let plan = sd.plan(&sample, DEFAULT_K).map_err(runtime)?;
        println!("    planner (unit weights at the dataset mean, k = {DEFAULT_K}): {plan}");
    }
    if let Some(engine) = &snap.engine {
        println!(
            "  engine: {} live rows across {} shard(s), ≈{} KiB resident",
            engine.len(),
            engine.shard_count(),
            engine.memory_bytes() / 1024
        );
        for (i, info) in engine.shard_infos().iter().enumerate() {
            println!(
                "    shard {i}: rows [{}, {}), {} points ({} dead), epoch {}, ≈{} KiB",
                info.offset,
                info.offset + info.rows,
                info.rows,
                info.dead_rows,
                info.epoch,
                info.memory_bytes / 1024
            );
        }
        print_block_stats(
            "    ",
            blocks_covered(engine.shards().iter()),
            engine
                .shards()
                .iter()
                .map(|s| s.block_stats())
                .fold((0, 0, 0), |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2)),
        );
        let stats = engine.mutation_stats();
        println!(
            "    delta: {} row(s) ({} dead); {} tombstone(s) total; engine epoch {}",
            stats.delta_rows,
            stats.delta_dead,
            stats.base_dead + stats.delta_dead,
            stats.epoch
        );
        // Planner observability: what the cost model would run for a
        // unit-weight query at the dataset's per-dimension mean (the rows
        // live inside the shard indexes; sum across them). Each shard plans
        // against its own sorted-column stats, so strategies can differ.
        if engine.shard_count() > 0 {
            let sample = mean_query(engine.shards().iter().map(|s| s.data())).map_err(runtime)?;
            let plans = engine.explain(&sample, DEFAULT_K).map_err(runtime)?;
            println!("  planner (unit weights at the dataset mean, k = {DEFAULT_K}):");
            for (i, plan) in plans.iter().enumerate() {
                println!("    shard {i}: {plan}");
            }
            // Floor provenance: run the same probe for real once and report
            // which shard slots raised the shared k-th-score floor.
            if !engine.is_empty() {
                engine.query(&sample, DEFAULT_K).map_err(runtime)?;
                let m = engine.metrics().snapshot();
                let nz: Vec<String> = m
                    .floor_contributions
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| **v > 0)
                    .map(|(slot, v)| format!("{} {v}", floor_slot_label(slot)))
                    .collect();
                println!(
                    "  floor provenance (probe query, k = {DEFAULT_K}): {}",
                    if nz.is_empty() {
                        String::from("none")
                    } else {
                        nz.join(" · ")
                    }
                );
            }
        }
    }
    if let Some(tk) = &snap.topk {
        println!(
            "  topk-index: {} live points, {} nodes, {} angles, branching {}, ≈{} KiB resident",
            tk.len(),
            tk.num_nodes(),
            tk.angles().len(),
            tk.branching(),
            tk.memory_bytes() / 1024
        );
        if let Some((blocks, bytes)) = tk.block_stats() {
            println!(
                "    block table: {blocks} SoA leaf block(s) × {} lanes, ≈{} KiB",
                sdq_core::kernels::LANES,
                bytes / 1024
            );
        }
    }
    if let Some(t1) = &snap.top1 {
        let (alpha, beta) = t1.weights();
        println!(
            "  top1-index: {} live points, k = {}, α = {alpha}, β = {beta}",
            t1.len(),
            t1.k()
        );
    }
    if let Some(rt) = &snap.rstar {
        println!("  rstar-tree: {} live points, {} dims", rt.len(), rt.dims());
    }

    // Durability status: present whenever the snapshot or a WAL sidecar
    // says this store is WAL-backed.
    let wal_file = wal_sidecar(path);
    let wal_present = std::path::Path::new(&wal_file).exists();
    if let Some(d) = &snap.durability {
        println!(
            "  durability: generation {}, last checkpoint epoch {}",
            d.generation, d.checkpoint_epoch
        );
        if !wal_present {
            println!("    wal: {wal_file} missing — acknowledged writes may be lost");
        } else {
            match std::fs::read(&wal_file) {
                Err(e) => println!("    wal: {wal_file}: unreadable ({e})"),
                Ok(bytes) => match wal::recover(&bytes) {
                    Err(e) => println!("    wal: corrupt ({e})"),
                    Ok(rec) if rec.header.generation < d.generation => println!(
                        "    wal: stale (generation {}, already folded into the snapshot)",
                        rec.header.generation
                    ),
                    Ok(rec) => {
                        let pending = rec.valid_len - wal::WAL_HEADER_BYTES as u64;
                        let torn = if rec.truncated_bytes > 0 {
                            format!(", {}-byte torn tail", rec.truncated_bytes)
                        } else {
                            String::new()
                        };
                        println!(
                            "    wal: {} record(s), {} byte(s) pending since checkpoint \
                             ({} file bytes{torn})",
                            rec.records.len(),
                            pending,
                            bytes.len()
                        );
                    }
                },
            }
        }
    } else if wal_present {
        println!("  durability: {wal_file} exists but the snapshot carries no durability section");
    }
    Ok(())
}

/// `inspect --json`: the same facts machine-readably — header, section
/// table, v5 region table, artifact stats, shard layout, block stats,
/// mutation pressure, floor provenance and the durability generation.
fn inspect_json(path: &str) -> Result<(), CliError> {
    let info = Snapshot::inspect(path).map_err(runtime)?;
    let v5 = info.version >= sdq_store::FORMAT_V5;
    let sections: Vec<String> = info
        .sections
        .iter()
        .map(|s| {
            let name = s.kind.map(SectionKind::name).unwrap_or("<unknown>");
            // v5 table entries carry no CRC; integrity lives in the
            // per-region CRC-32C frames reported below.
            let crc = if v5 {
                String::from("null")
            } else {
                format!("{}", s.crc32)
            };
            format!(
                "{{\"name\": {}, \"raw_kind\": {}, \"offset\": {}, \"bytes\": {}, \
                 \"crc32\": {crc}}}",
                json_str(name),
                s.raw_kind,
                s.offset,
                s.len
            )
        })
        .collect();
    let regions: Vec<String> = if v5 {
        let m = Snapshot::open_mapped(path).map_err(runtime)?;
        m.regions()
            .iter()
            .map(|r| {
                format!(
                    "{{\"name\": {}, \"offset\": {}, \"bytes\": {}, \"crc32c\": {}, \
                     \"state\": {}}}",
                    json_str(r.name()),
                    r.file_offset(),
                    r.len(),
                    r.expected_crc(),
                    json_str(r.state().label())
                )
            })
            .collect()
    } else {
        Vec::new()
    };

    let snap = Snapshot::load(path).map_err(runtime)?;
    let mut artifacts: Vec<&str> = Vec::new();
    if snap.dataset.is_some() {
        artifacts.push("dataset");
    }
    if snap.sd.is_some() {
        artifacts.push("sd-index");
    }
    if snap.engine.is_some() {
        artifacts.push("engine");
    }
    if snap.topk.is_some() {
        artifacts.push("topk-index");
    }
    if snap.top1.is_some() {
        artifacts.push("top1-index");
    }
    if snap.rstar.is_some() {
        artifacts.push("rstar-tree");
    }
    let dataset = snap
        .dataset
        .as_ref()
        .map(|d| format!("{{\"rows\": {}, \"dims\": {}}}", d.len(), d.dims()))
        .unwrap_or_else(|| String::from("null"));
    let roles = snap
        .roles
        .as_ref()
        .map(|r| {
            let spec: String = r
                .iter()
                .map(|role| match role {
                    DimRole::Attractive => 'a',
                    DimRole::Repulsive => 'r',
                })
                .collect();
            json_str(&spec)
        })
        .unwrap_or_else(|| String::from("null"));

    let engine_json = match &snap.engine {
        Some(engine) => {
            let shard_layout: Vec<String> = engine
                .shard_infos()
                .iter()
                .enumerate()
                .map(|(i, si)| {
                    format!(
                        "{{\"shard\": {i}, \"offset\": {}, \"rows\": {}, \"dead_rows\": {}, \
                         \"epoch\": {}, \"memory_bytes\": {}}}",
                        si.offset, si.rows, si.dead_rows, si.epoch, si.memory_bytes
                    )
                })
                .collect();
            let (blocks, bytes, stale) = engine
                .shards()
                .iter()
                .map(|s| s.block_stats())
                .fold((0, 0, 0), |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2));
            let covered = blocks_covered(engine.shards().iter());
            let stats = engine.mutation_stats();
            // Floor provenance: one real probe query at the dataset mean.
            let floor = if engine.shard_count() > 0 && !engine.is_empty() {
                let sample =
                    mean_query(engine.shards().iter().map(|s| s.data())).map_err(runtime)?;
                engine.query(&sample, DEFAULT_K).map_err(runtime)?;
                floor_contributions_json(&engine.metrics().snapshot())
            } else {
                String::from("{}")
            };
            format!(
                "{{\"live_rows\": {}, \"shards\": {}, \"epoch\": {}, \"memory_bytes\": {}, \
                 \"shard_layout\": [{}], \
                 \"block_stats\": {{\"blocks\": {blocks}, \"lanes\": {}, \"bytes\": {bytes}, \
                 \"stale_trees\": {stale}, \"covered_points\": {covered}}}, \
                 \"delta\": {{\"rows\": {}, \"dead\": {}}}, \"tombstones\": {}, \
                 \"floor_contributions\": {floor}}}",
                engine.len(),
                engine.shard_count(),
                stats.epoch,
                engine.memory_bytes(),
                shard_layout.join(", "),
                sdq_core::kernels::LANES,
                stats.delta_rows,
                stats.delta_dead,
                stats.base_dead + stats.delta_dead,
            )
        }
        None => String::from("null"),
    };

    let durability = match &snap.durability {
        Some(d) => {
            let wal_file = wal_sidecar(path);
            let wal = match std::fs::read(&wal_file) {
                Err(_) => String::from("{\"present\": false}"),
                Ok(bytes) => match wal::recover(&bytes) {
                    Err(e) => format!(
                        "{{\"present\": true, \"corrupt\": {}}}",
                        json_str(&e.to_string())
                    ),
                    Ok(rec) => format!(
                        "{{\"present\": true, \"generation\": {}, \"stale\": {}, \
                         \"records\": {}, \"pending_bytes\": {}, \"torn_bytes\": {}, \
                         \"file_bytes\": {}}}",
                        rec.header.generation,
                        rec.header.generation < d.generation,
                        rec.records.len(),
                        rec.valid_len - wal::WAL_HEADER_BYTES as u64,
                        rec.truncated_bytes,
                        bytes.len()
                    ),
                },
            };
            format!(
                "{{\"generation\": {}, \"checkpoint_epoch\": {}, \"wal\": {wal}}}",
                d.generation, d.checkpoint_epoch
            )
        }
        None => String::from("null"),
    };

    print!(
        "{{\n  \"path\": {},\n  \"format_version\": {},\n  \"file_bytes\": {},\n  \
         \"sections\": [{}],\n  \"regions\": [{}],\n  \"artifacts\": [{}],\n  \
         \"dataset\": {dataset},\n  \"roles\": {roles},\n  \"engine\": {engine_json},\n  \
         \"durability\": {durability}\n}}\n",
        json_str(path),
        info.version,
        info.file_len,
        sections.join(", "),
        regions.join(", "),
        artifacts
            .iter()
            .map(|a| json_str(a))
            .collect::<Vec<_>>()
            .join(", "),
    );
    Ok(())
}

// ─── metrics / events ───────────────────────────────────────────────────────

/// The in-memory probe workload `metrics` and `events` run so the
/// telemetry they render holds samples: optional synthetic mutations, an
/// optional compaction, then a batch of uniform queries. Nothing is saved.
struct ProbeOpts {
    queries: usize,
    k: usize,
    mutate: usize,
    compact: bool,
    seed: u64,
}

impl Default for ProbeOpts {
    fn default() -> Self {
        ProbeOpts {
            queries: 32,
            k: DEFAULT_K,
            mutate: 0,
            compact: false,
            seed: 13,
        }
    }
}

impl ProbeOpts {
    /// Consumes a probe flag from the cursor; `Ok(false)` = not ours.
    fn parse_flag(&mut self, flag: &str, flags: &mut Flags) -> Result<bool, CliError> {
        match flag {
            "--queries" => self.queries = flags.parsed("--queries")?,
            "--k" => self.k = flags.parsed("--k")?,
            "--mutate" => self.mutate = flags.parsed("--mutate")?,
            "--compact" => self.compact = true,
            "--seed" => self.seed = flags.parsed("--seed")?,
            _ => return Ok(false),
        }
        Ok(true)
    }
}

/// Runs the probe workload against a loaded engine, in memory only.
fn run_probe(engine: &mut SdEngine, p: &ProbeOpts) -> Result<(), CliError> {
    if p.mutate > 0 {
        let dims = engine.dims();
        let fresh = generate(Distribution::Uniform, p.mutate, dims, p.seed ^ 0x5eed);
        for (_, coords) in fresh.iter() {
            engine.insert(coords).map_err(runtime)?;
        }
        // Tombstone up to mutate/2 victims; the random stream skips ids it
        // already killed, bounded so collisions cannot loop forever.
        let victims = engine.total_rows();
        let mut state = p.seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut deleted = 0usize;
        let mut attempts = 0usize;
        while deleted < p.mutate / 2 && attempts < 64 * p.mutate {
            attempts += 1;
            state = splitmix64(state);
            let id = (state % victims as u64) as u32;
            if engine.delete(sdq_core::PointId::new(id)).map_err(runtime)? {
                deleted += 1;
            }
        }
    }
    if p.compact {
        engine
            .compact_with(&CompactionOptions::default())
            .map_err(runtime)?;
    }
    if p.queries > 0 {
        let workload = uniform_queries(p.queries, engine.dims(), p.seed);
        let mut scratch = EngineScratch::new();
        let mut sink = 0.0f64;
        for q in &workload {
            sink += engine
                .query_with(q, p.k, &mut scratch)
                .map_err(runtime)?
                .iter()
                .map(|sp| sp.score)
                .sum::<f64>();
        }
        std::hint::black_box(sink);
    }
    Ok(())
}

/// Loads snapshot `path` as an engine for the observability probes (a
/// WAL-backed snapshot replays its log first; an sd-index is promoted).
fn load_probe_engine(path: &str, what: &str) -> Result<SdEngine, CliError> {
    let mut snap = load_query_snapshot(path)?;
    if let Some(engine) = snap.engine.take() {
        return Ok(engine);
    }
    if let Some(sd) = snap.sd.take() {
        return SdEngine::single(sd).map_err(runtime);
    }
    Err(runtime(format!(
        "{what} needs an engine or sd-index snapshot (rebuild with --index sd)"
    )))
}

fn cmd_metrics(args: &[String]) -> Result<(), CliError> {
    let mut path: Option<&str> = None;
    let mut prometheus = false;
    let mut json = false;
    let mut slow_query_us: u64 = 0;
    let mut probe = ProbeOpts::default();
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next() {
        match flag {
            "--prometheus" => prometheus = true,
            "--json" => json = true,
            "--slow-query-us" => slow_query_us = flags.parsed("--slow-query-us")?,
            other if probe.parse_flag(other, &mut flags)? => {}
            other if !other.starts_with('-') && path.is_none() => path = Some(other),
            other => return Err(usage(format!("unknown flag {other:?}"))),
        }
    }
    let path = path.ok_or_else(|| usage("metrics needs a snapshot path"))?;
    if prometheus && json {
        return Err(usage("--prometheus and --json are mutually exclusive"));
    }
    if slow_query_us > 0 {
        Telemetry::global().set_slow_query_micros(slow_query_us);
    }
    let mut engine = load_probe_engine(path, "metrics")?;
    run_probe(&mut engine, &probe)?;
    let metrics = engine.metrics();
    if prometheus {
        print!("{}", metrics.render_prometheus());
    } else if json {
        print!("{}", metrics_json(metrics, &probe));
    } else {
        print_metrics_human(path, metrics, &probe);
    }
    Ok(())
}

/// The default human rendering of `sdq metrics`.
fn print_metrics_human(path: &str, metrics: &EngineMetrics, probe: &ProbeOpts) {
    let snap = metrics.snapshot();
    let tel = metrics.telemetry();
    println!(
        "telemetry for {path} ({} probe queries, k = {}):",
        probe.queries, probe.k
    );
    println!("histograms (µs):");
    println!(
        "  {:<12} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "name", "count", "p50", "p90", "p99", "p99.9", "max"
    );
    for (name, h) in tel.histograms() {
        let s = h.snapshot();
        if s.count() == 0 {
            println!("  {:<12} {:>8}", name, 0);
            continue;
        }
        println!(
            "  {:<12} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            name,
            s.count(),
            s.quantile(0.50) / 1e3,
            s.quantile(0.90) / 1e3,
            s.quantile(0.99) / 1e3,
            s.quantile(0.999) / 1e3,
            s.max_nanos() as f64 / 1e3
        );
    }
    println!("counters:");
    println!(
        "  queries_served {} · rows_scored {} · compactions {} · epoch_transitions {}",
        snap.queries_served, snap.rows_scored, snap.compactions, snap.epoch_transitions
    );
    println!(
        "  wal: records {} · bytes {} · syncs {} · replayed {} · checkpoints {}",
        snap.wal_records_appended,
        snap.wal_bytes_appended,
        snap.wal_syncs,
        snap.wal_records_replayed,
        snap.wal_checkpoints
    );
    println!(
        "  robustness: health {} · retries {} · deadline_exceeded {} · scrub ok {} / failed {}",
        health_label(snap.engine_health),
        snap.retries_attempted,
        snap.deadline_exceeded,
        snap.scrub_regions_ok,
        snap.scrub_regions_failed
    );
    let nz: Vec<String> = snap
        .floor_contributions
        .iter()
        .enumerate()
        .filter(|(_, v)| **v > 0)
        .map(|(slot, v)| format!("{} {v}", floor_slot_label(slot)))
        .collect();
    println!(
        "floor contributions: {}",
        if nz.is_empty() {
            String::from("none")
        } else {
            nz.join(" · ")
        }
    );
    println!(
        "event journal: {} event(s) retained ({} pushed, {} overwritten)",
        tel.journal.depth(),
        tel.journal.pushed(),
        tel.journal.overwritten()
    );
}

/// Human label for the `engine_health` gauge code.
fn health_label(code: u64) -> &'static str {
    match code {
        sdq_engine::HEALTH_DEGRADED => "degraded",
        sdq_engine::HEALTH_POISONED => "poisoned",
        _ => "healthy",
    }
}

/// One latency histogram snapshot as a JSON object (microsecond units).
fn histo_json(s: &HistoSnapshot) -> String {
    format!(
        "{{\"count\": {}, \"p50_us\": {:.3}, \"p90_us\": {:.3}, \"p99_us\": {:.3}, \
         \"p999_us\": {:.3}, \"mean_us\": {:.3}, \"max_us\": {:.3}}}",
        s.count(),
        s.quantile(0.50) / 1e3,
        s.quantile(0.90) / 1e3,
        s.quantile(0.99) / 1e3,
        s.quantile(0.999) / 1e3,
        s.mean_nanos() / 1e3,
        s.max_nanos() as f64 / 1e3
    )
}

/// `metrics --json`: counters, floor provenance, every histogram and the
/// journal status as one JSON object.
fn metrics_json(metrics: &EngineMetrics, probe: &ProbeOpts) -> String {
    let snap = metrics.snapshot();
    let tel = metrics.telemetry();
    let histograms: Vec<String> = tel
        .histograms()
        .iter()
        .map(|(name, h)| format!("{}: {}", json_str(name), histo_json(&h.snapshot())))
        .collect();
    format!(
        "{{\n  \"probe\": {{\"queries\": {}, \"k\": {}, \"mutate\": {}, \"compact\": {}, \
         \"seed\": {}}},\n  \
         \"counters\": {{\"queries_served\": {}, \"rows_scored\": {}, \"compactions\": {}, \
         \"epoch_transitions\": {}, \"wal_records_appended\": {}, \"wal_bytes_appended\": {}, \
         \"wal_syncs\": {}, \"wal_records_replayed\": {}, \"wal_checkpoints\": {}, \
         \"retries_attempted\": {}, \"deadline_exceeded\": {}, \"scrub_regions_ok\": {}, \
         \"scrub_regions_failed\": {}}},\n  \
         \"engine_health\": {{\"code\": {}, \"label\": {}}},\n  \
         \"floor_contributions\": {},\n  \
         \"histograms\": {{{}}},\n  \
         \"event_journal\": {{\"depth\": {}, \"pushed\": {}, \"overwritten\": {}}}\n}}\n",
        probe.queries,
        probe.k,
        probe.mutate,
        probe.compact,
        probe.seed,
        snap.queries_served,
        snap.rows_scored,
        snap.compactions,
        snap.epoch_transitions,
        snap.wal_records_appended,
        snap.wal_bytes_appended,
        snap.wal_syncs,
        snap.wal_records_replayed,
        snap.wal_checkpoints,
        snap.retries_attempted,
        snap.deadline_exceeded,
        snap.scrub_regions_ok,
        snap.scrub_regions_failed,
        snap.engine_health,
        json_str(health_label(snap.engine_health)),
        floor_contributions_json(&snap),
        histograms.join(", "),
        tel.journal.depth(),
        tel.journal.pushed(),
        tel.journal.overwritten()
    )
}

fn cmd_events(args: &[String]) -> Result<(), CliError> {
    let mut path: Option<&str> = None;
    let mut json = false;
    let mut follow = false;
    let mut slow_query_us: u64 = 0;
    let mut probe = ProbeOpts::default();
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next() {
        match flag {
            "--json" => json = true,
            "--follow" => follow = true,
            "--slow-query-us" => slow_query_us = flags.parsed("--slow-query-us")?,
            other if probe.parse_flag(other, &mut flags)? => {}
            other if !other.starts_with('-') && path.is_none() => path = Some(other),
            other => return Err(usage(format!("unknown flag {other:?}"))),
        }
    }
    let path = path.ok_or_else(|| usage("events needs a snapshot path"))?;
    if slow_query_us > 0 {
        Telemetry::global().set_slow_query_micros(slow_query_us);
    }
    let mut engine = load_probe_engine(path, "events")?;
    // The engine records into this registry; holding the Arc lets the
    // journal be drained while the workload runs on another thread.
    let tel = Arc::clone(engine.metrics().telemetry());

    if follow {
        let worker = std::thread::spawn(move || -> Result<(), String> {
            run_probe(&mut engine, &probe).map_err(|e| match e {
                CliError::Usage(m) | CliError::Runtime(m) => m,
                CliError::Exit(code) => format!("probe exited with code {code}"),
            })
        });
        let mut last_seq: Option<u64> = None;
        loop {
            let done = worker.is_finished();
            let mut fresh: Vec<EventRecord> = tel
                .journal
                .snapshot()
                .into_iter()
                .filter(|r| last_seq.is_none_or(|s| r.seq > s))
                .collect();
            fresh.sort_by_key(|r| r.seq);
            for rec in &fresh {
                print_event(rec, json);
                last_seq = Some(rec.seq);
            }
            if done {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        worker
            .join()
            .map_err(|_| runtime("event workload thread panicked"))?
            .map_err(runtime)?;
    } else {
        run_probe(&mut engine, &probe)?;
        let mut records = tel.journal.snapshot();
        records.sort_by_key(|r| r.seq);
        if records.is_empty() && !json {
            println!("(no events journaled; --mutate/--compact/--slow-query-us generate some)");
        }
        for rec in &records {
            print_event(rec, json);
        }
    }
    if !json {
        println!(
            "({} event(s) journaled, {} overwritten before they could print)",
            tel.journal.pushed(),
            tel.journal.overwritten()
        );
    }
    Ok(())
}

/// Prints one journal record, human (`#seq  epoch-seconds  label  detail`)
/// or as one JSON object per line.
fn print_event(rec: &EventRecord, json: bool) {
    if json {
        println!(
            "{{\"seq\": {}, \"unix_micros\": {}, \"event\": {}, {}}}",
            rec.seq,
            rec.unix_micros,
            json_str(rec.kind.label()),
            event_fields_json(&rec.kind)
        );
    } else {
        println!(
            "#{:<5} {:>17.6}  {:<20} {}",
            rec.seq,
            rec.unix_micros as f64 / 1e6,
            rec.kind.label(),
            event_detail_human(&rec.kind)
        );
    }
}

/// The human-readable detail column of one event.
fn event_detail_human(kind: &EventKind) -> String {
    match kind {
        EventKind::CompactionStart { epoch } => format!("epoch {epoch}"),
        EventKind::CompactionFinish {
            epoch,
            rebuilt_shards,
            merged_delta_rows,
            dropped_tombstones,
            rows_moved,
            duration_micros,
            rebalanced,
        } => format!(
            "epoch {epoch}: rebuilt {rebuilt_shards} shard(s), merged {merged_delta_rows} \
             delta row(s), dropped {dropped_tombstones} tombstone(s), moved {rows_moved} \
             row(s) in {duration_micros} µs{}",
            if *rebalanced { " (rebalanced)" } else { "" }
        ),
        EventKind::EpochTransition { from, to } => format!("{from} → {to}"),
        EventKind::Checkpoint { generation, epoch } => {
            format!("generation {generation} (epoch {epoch})")
        }
        EventKind::WalRotation { generation } => format!("generation {generation}"),
        EventKind::WalPoison { reason } => String::from(*reason),
        EventKind::WalRecovery {
            replayed,
            truncated_bytes,
        } => format!("replayed {replayed} record(s), truncated {truncated_bytes} byte(s)"),
        EventKind::LazyVerify { bytes, ok, crc } => format!(
            "{bytes} byte(s), crc32c {crc:08x}: {}",
            if *ok { "ok" } else { "FAILED" }
        ),
        EventKind::DeltaThreshold {
            delta_rows,
            base_rows,
            percent,
        } => format!("{delta_rows} delta row(s) ≥ {percent}% of {base_rows} base row(s)"),
        EventKind::TombstoneThreshold {
            tombstones,
            total_rows,
            percent,
        } => format!("{tombstones} tombstone(s) ≥ {percent}% of {total_rows} row(s)"),
        EventKind::HealthTransition { from, to } => format!("{from} → {to}"),
        EventKind::SlowQuery {
            wall_micros,
            k,
            threshold_micros,
            profile,
        } => format!(
            "{wall_micros} µs ≥ {threshold_micros} µs (k {k}): {} popped, {} floor-pruned, \
             {} fetched, {} scored, {} emitted",
            profile.blocks_popped,
            profile.blocks_floor_pruned,
            profile.rows_fetched,
            profile.points_scored,
            profile.emitted
        ),
    }
}

/// The kind-specific JSON fields of one event (no surrounding braces).
fn event_fields_json(kind: &EventKind) -> String {
    match kind {
        EventKind::CompactionStart { epoch } => format!("\"epoch\": {epoch}"),
        EventKind::CompactionFinish {
            epoch,
            rebuilt_shards,
            merged_delta_rows,
            dropped_tombstones,
            rows_moved,
            duration_micros,
            rebalanced,
        } => format!(
            "\"epoch\": {epoch}, \"rebuilt_shards\": {rebuilt_shards}, \
             \"merged_delta_rows\": {merged_delta_rows}, \
             \"dropped_tombstones\": {dropped_tombstones}, \"rows_moved\": {rows_moved}, \
             \"duration_micros\": {duration_micros}, \"rebalanced\": {rebalanced}"
        ),
        EventKind::EpochTransition { from, to } => format!("\"from\": {from}, \"to\": {to}"),
        EventKind::Checkpoint { generation, epoch } => {
            format!("\"generation\": {generation}, \"epoch\": {epoch}")
        }
        EventKind::WalRotation { generation } => format!("\"generation\": {generation}"),
        EventKind::WalPoison { reason } => format!("\"reason\": {}", json_str(reason)),
        EventKind::WalRecovery {
            replayed,
            truncated_bytes,
        } => format!("\"replayed\": {replayed}, \"truncated_bytes\": {truncated_bytes}"),
        EventKind::LazyVerify { bytes, ok, crc } => {
            format!("\"bytes\": {bytes}, \"ok\": {ok}, \"crc32c\": {crc}")
        }
        EventKind::DeltaThreshold {
            delta_rows,
            base_rows,
            percent,
        } => format!(
            "\"delta_rows\": {delta_rows}, \"base_rows\": {base_rows}, \"percent\": {percent}"
        ),
        EventKind::TombstoneThreshold {
            tombstones,
            total_rows,
            percent,
        } => format!(
            "\"tombstones\": {tombstones}, \"total_rows\": {total_rows}, \"percent\": {percent}"
        ),
        EventKind::HealthTransition { from, to } => {
            format!("\"from\": {}, \"to\": {}", json_str(from), json_str(to))
        }
        EventKind::SlowQuery {
            wall_micros,
            k,
            threshold_micros,
            profile,
        } => format!(
            "\"wall_micros\": {wall_micros}, \"k\": {k}, \
             \"threshold_micros\": {threshold_micros}, \"profile\": {{\
             \"blocks_popped\": {}, \"blocks_floor_pruned\": {}, \"rows_fetched\": {}, \
             \"points_gathered\": {}, \"points_scored\": {}, \"emitted\": {}, \
             \"rounds\": {}}}",
            profile.blocks_popped,
            profile.blocks_floor_pruned,
            profile.rows_fetched,
            profile.points_gathered,
            profile.points_scored,
            profile.emitted,
            profile.rounds
        ),
    }
}

/// The SoA block-table line `inspect` prints under an sd-index or engine
/// artifact (aggregated `(blocks, bytes, stale trees)` — counted in
/// `memory_bytes`, so the footprint report no longer undercounts the
/// derived query-time state). `covered` is the total point count stored
/// across all live block tables (each pair tree blocks every row it
/// covers, so a 2-pair index over n rows packs 2·n points into lanes);
/// the fill factor reports how full the fixed-capacity lanes are.
fn print_block_stats(indent: &str, covered: usize, (blocks, bytes, stale): (usize, usize, usize)) {
    let lanes = sdq_core::kernels::LANES;
    let fill = if blocks > 0 {
        format!(
            ", fill {:.1}% ({:.1}/{lanes} points per block)",
            100.0 * covered as f64 / (blocks * lanes) as f64,
            covered as f64 / blocks as f64
        )
    } else {
        String::new()
    };
    println!(
        "{indent}block tables: {blocks} SoA leaf block(s) × {lanes} lanes, ≈{} KiB{}{fill}",
        bytes / 1024,
        if stale > 0 {
            format!(" ({stale} stale tree(s))")
        } else {
            String::new()
        }
    );
}

/// Total points packed into live SoA block tables across one or more
/// sd-indexes: every non-stale pair tree blocks all the rows its index
/// covers. The numerator of the `inspect` fill factor.
fn blocks_covered<'a>(indexes: impl Iterator<Item = &'a SdIndex>) -> usize {
    indexes
        .map(|sd| {
            let (_, _, stale) = sd.block_stats();
            sd.data().len() * sd.pairs().len().saturating_sub(stale)
        })
        .sum()
}

/// A unit-weight probe query at the per-dimension mean of one or more
/// datasets (the engine's rows live inside its shard indexes, so the mean
/// sums across them). The planner sample `sdq inspect` reports against.
fn mean_query<'a>(
    datasets: impl Iterator<Item = &'a Dataset>,
) -> Result<SdQuery, sdq_core::SdError> {
    let mut mean: Vec<f64> = Vec::new();
    let mut counted = 0usize;
    for data in datasets {
        if mean.is_empty() {
            mean = vec![0.0; data.dims()];
        }
        for (_, coords) in data.iter() {
            for (m, &c) in mean.iter_mut().zip(coords) {
                *m += c;
            }
        }
        counted += data.len();
    }
    for m in &mut mean {
        *m /= counted.max(1) as f64;
    }
    let dims = mean.len();
    SdQuery::new(mean, vec![1.0; dims])
}

// ─── bench-load ─────────────────────────────────────────────────────────────

fn cmd_bench_load(args: &[String]) -> Result<(), CliError> {
    let mut path: Option<&str> = None;
    let mut iters: usize = 5;
    let mut json_out: Option<String> = None;
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next() {
        match flag {
            "--iters" => iters = flags.parsed("--iters")?,
            "--json-out" => json_out = Some(flags.value("--json-out")?.to_string()),
            other if !other.starts_with('-') && path.is_none() => path = Some(other),
            other => return Err(usage(format!("unknown flag {other:?}"))),
        }
    }
    let path = path.ok_or_else(|| usage("bench-load needs a snapshot path"))?;
    if iters == 0 {
        return Err(usage("--iters must be at least 1"));
    }

    // First load is reported separately: a fresh process pays OS page
    // faults for the whole working set, later loads reuse the heap.
    let mut load_ms = Vec::with_capacity(iters);
    let mut snap = None;
    for _ in 0..iters {
        let (s, ms) = timed(|| Snapshot::load(path));
        snap = Some(s.map_err(runtime)?);
        load_ms.push(ms);
    }
    let snap = snap.expect("at least one iteration ran");
    let cold = load_ms[0];
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    let mib = bytes as f64 / (1024.0 * 1024.0);
    let warm = if load_ms.len() > 1 {
        median(&mut load_ms[1..])
    } else {
        cold
    };
    println!(
        "load: cold {cold:.1} ms ({:.0} MiB/s), warm median {warm:.1} ms ({:.0} MiB/s) over {} runs",
        mib / (cold / 1e3),
        mib / (warm / 1e3),
        iters
    );

    // ── cold start: eager owned decode vs zero-copy open_mapped ────────
    // "Cold" here = time to the first answer in a fresh process: the owned
    // path decodes + verifies every section before it can serve; the
    // mapped path reads metadata only and pays lazy checksums for just the
    // regions the first query touches.
    let version = Snapshot::inspect(path).map_err(runtime)?.version;
    let sample = if let Some(e) = &snap.engine {
        Some(mean_query(e.shards().iter().map(|s| s.data())).map_err(runtime)?)
    } else {
        snap.sd
            .as_ref()
            .map(|sd| mean_query(std::iter::once(sd.data())))
            .transpose()
            .map_err(runtime)?
    };
    if version >= sdq_store::FORMAT_V5 {
        if let Some(query) = &sample {
            let k = DEFAULT_K;
            let (m, open_ms) = timed(|| Snapshot::open_mapped(path));
            let m = m.map_err(runtime)?;
            let (mapped_first, mapped_fq_ms) = timed(|| bench_query_once(&m.snapshot, query, k));
            let mapped_first = mapped_first?;
            let (owned_first, owned_fq_ms) = timed(|| bench_query_once(&snap, query, k));
            let owned_first = owned_first?;
            if mapped_first != owned_first {
                return Err(runtime(
                    "mapped and owned decodes answered the same query differently",
                ));
            }
            let owned_cold = cold + owned_fq_ms;
            let mapped_cold = open_ms + mapped_fq_ms;
            println!(
                "cold start to first answer (k = {k}): owned {owned_cold:.2} ms \
                 (decode {cold:.2} + query {owned_fq_ms:.2}), mapped {mapped_cold:.2} ms \
                 (open {open_ms:.2} + first query {mapped_fq_ms:.2}) — {:.0}× faster",
                owned_cold / mapped_cold
            );
            // Steady state: same query, scratch-free `query()` on both
            // sides, nearest-rank p50 over the sample count.
            const WARM_RUNS: usize = 64;
            let mut owned_lat = Vec::with_capacity(WARM_RUNS);
            let mut mapped_lat = Vec::with_capacity(WARM_RUNS);
            for _ in 0..WARM_RUNS {
                let (r, ms) = timed(|| bench_query_once(&snap, query, k));
                r?;
                owned_lat.push(ms);
                let (r, ms) = timed(|| bench_query_once(&m.snapshot, query, k));
                r?;
                mapped_lat.push(ms);
            }
            let owned_p50 = percentile(&mut owned_lat, 50.0);
            let mapped_p50 = percentile(&mut mapped_lat, 50.0);
            println!(
                "warm query p50: owned {owned_p50:.4} ms, mapped {mapped_p50:.4} ms \
                 ({:+.1}%)",
                100.0 * (mapped_p50 - owned_p50) / owned_p50
            );
            if let Some(out) = &json_out {
                let entry = format!(
                    "{{\"file_bytes\": {bytes}, \"format_version\": {version}, \
                     \"owned_decode_ms\": {cold:.3}, \"owned_first_query_ms\": {owned_fq_ms:.3}, \
                     \"mapped_open_ms\": {open_ms:.3}, \"mapped_first_query_ms\": {mapped_fq_ms:.3}, \
                     \"owned_cold_ms\": {owned_cold:.3}, \"mapped_cold_ms\": {mapped_cold:.3}, \
                     \"cold_speedup\": {:.1}, \
                     \"owned_warm_p50_ms\": {owned_p50:.4}, \"mapped_warm_p50_ms\": {mapped_p50:.4}}}",
                    owned_cold / mapped_cold
                );
                merge_cold_start(out, &entry)?;
                println!("merged cold_start into {out}");
            }
        } else if json_out.is_some() {
            return Err(runtime(
                "--json-out: the snapshot holds no engine or sd-index to time a query against",
            ));
        }
    } else if json_out.is_some() {
        return Err(runtime(format!(
            "--json-out: {path} is a format-v{version} snapshot; the cold-start comparison \
             needs v5 (rebuild with `sdq build` or rewrite with `sdq compact`)"
        )));
    }

    // Rebuild every index kind the snapshot actually holds, for an
    // apples-to-apples comparison.
    let (Some(data), Some(roles)) = (&snap.dataset, &snap.roles) else {
        println!("rebuild: skipped (snapshot stores no raw dataset + roles)");
        return Ok(());
    };
    let mut total_rebuild = 0.0;
    if snap.sd.is_some() {
        let mut ms_all = Vec::with_capacity(iters);
        for _ in 0..iters {
            let (index, ms) = timed(|| SdIndex::build(data.clone(), roles));
            index.map_err(runtime)?;
            ms_all.push(ms);
        }
        let med = median(&mut ms_all);
        total_rebuild += med;
        println!("rebuild sd-index: median {med:.1} ms");
    }
    let axes = two_dim_axes(roles).ok();
    if let (Some(tk), Some((x, y))) = (&snap.topk, axes) {
        let pts: Vec<(f64, f64)> = data.iter().map(|(_, c)| (c[x], c[y])).collect();
        let angles = tk.angles().to_vec();
        let branching = tk.branching();
        let mut ms_all = Vec::with_capacity(iters);
        for _ in 0..iters {
            let (index, ms) = timed(|| TopKIndex::build_with(&pts, &angles, branching));
            index.map_err(runtime)?;
            ms_all.push(ms);
        }
        let med = median(&mut ms_all);
        total_rebuild += med;
        println!("rebuild topk-index: median {med:.1} ms");
    }
    if let (Some(t1), Some((x, y))) = (&snap.top1, axes) {
        let pts: Vec<(f64, f64)> = data.iter().map(|(_, c)| (c[x], c[y])).collect();
        let (alpha, beta) = t1.weights();
        let k = t1.k();
        // top1 construction can be seconds at scale: one timed build.
        let (index, ms) = timed(|| Top1Index::build(&pts, alpha, beta, k));
        index.map_err(runtime)?;
        total_rebuild += ms;
        println!("rebuild top1-index: {ms:.1} ms (single run)");
    }
    if snap.rstar.is_some() {
        let mut ms_all = Vec::with_capacity(iters);
        for _ in 0..iters {
            let (_, ms) = timed(|| RStarTree::bulk_load(data.dims(), data.flat(), 16));
            ms_all.push(ms);
        }
        let med = median(&mut ms_all);
        total_rebuild += med;
        println!("rebuild rstar-tree: median {med:.1} ms");
    }
    if total_rebuild > 0.0 {
        println!(
            "speedup: {:.1}× cold, {:.1}× warm (rebuild {total_rebuild:.1} ms total)",
            total_rebuild / cold,
            total_rebuild / warm
        );
    }
    Ok(())
}

/// Repeated serving measurement shared by the engine and sd-index paths of
/// `sdq query`: one warm-up pass, `repeat` timed serial passes over the
/// caller's reusable scratch (percentiles), then the parallel batch path
/// for QPS. The answer is identical across repeats; one final *untimed*
/// pass collects it (`collect = true`), so the timed region contains no
/// answer copy — the same methodology as `bench-query`.
fn serve_repeated(
    label_prefix: &str,
    query: &SdQuery,
    repeat: usize,
    threads: usize,
    mut once: impl FnMut(&SdQuery, bool) -> Result<Option<Vec<ScoredPoint>>, CliError>,
    batch: impl FnOnce(&[SdQuery]) -> Result<(), CliError>,
) -> Result<Vec<ScoredPoint>, CliError> {
    once(query, false)?; // warm-up
    let mut lat_ms = Vec::with_capacity(repeat);
    for _ in 0..repeat {
        let (r, ms) = timed(|| once(query, false));
        r?;
        lat_ms.push(ms);
    }
    let answer = once(query, true)?.expect("collect pass returns the answer");
    let batch_queries: Vec<SdQuery> = vec![query.clone(); repeat];
    let (r, batch_ms) = timed(|| batch(&batch_queries));
    r?;
    println!(
        "{label_prefix} {repeat}: serial p50 {:.3} ms, p99 {:.3} ms; batch {threads} thread(s): {:.0} queries/s",
        percentile(&mut lat_ms, 50.0),
        percentile(&mut lat_ms, 99.0),
        repeat as f64 / (batch_ms / 1e3)
    );
    Ok(answer)
}

/// One top-k query against whichever queryable artifact the snapshot
/// holds (engine preferred, then sd-index) — the bench-load probe.
fn bench_query_once(
    snap: &Snapshot,
    query: &SdQuery,
    k: usize,
) -> Result<Vec<ScoredPoint>, CliError> {
    if let Some(e) = &snap.engine {
        return e.query(query, k).map_err(runtime);
    }
    if let Some(sd) = &snap.sd {
        return sd.query(query, k).map_err(runtime);
    }
    Err(runtime(
        "snapshot holds no engine or sd-index to query (rebuild with --index sd)",
    ))
}

/// Merges a `cold_start` key into the bench JSON report (the file
/// `bench-query` writes), replacing any cold_start a previous run left.
/// Creates a fresh report when the file does not exist.
fn merge_cold_start(out: &str, entry: &str) -> Result<(), CliError> {
    let base = match std::fs::read_to_string(out) {
        Ok(s) => {
            let mut s = s.trim_end().to_string();
            // A previous merge appended cold_start last; cut it (and its
            // leading comma) so reruns replace rather than accumulate.
            if let Some(i) = s.find(",\n  \"cold_start\":") {
                s.truncate(i);
                s.push_str("\n}");
            }
            s
        }
        Err(_) => String::from("{\n  \"source\": \"bench-load\"\n}"),
    };
    let Some(stripped) = base.trim_end().strip_suffix('}') else {
        return Err(runtime(format!(
            "{out} does not end in a JSON object; cannot merge cold_start"
        )));
    };
    let merged = format!(
        "{},\n  \"cold_start\": {entry}\n}}\n",
        stripped.trim_end().trim_end_matches(',')
    );
    std::fs::write(out, merged).map_err(|e| runtime(format!("cannot write {out}: {e}")))
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    samples[samples.len() / 2]
}

/// Nearest-rank percentile (`p` in 0..=100) of a sample set.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = ((p / 100.0) * (samples.len() - 1) as f64).round() as usize;
    samples[idx.min(samples.len() - 1)]
}

// ─── bench-query ────────────────────────────────────────────────────────────

/// Default result size of `bench-query`: the acceptance workload of the
/// zero-allocation query engine (100k × 4-D, k = 16).
const BENCH_K: usize = 16;

fn cmd_bench_query(args: &[String]) -> Result<(), CliError> {
    let mut path: Option<&str> = None;
    let mut synthetic: Option<Distribution> = None;
    let mut n: usize = 100_000;
    let mut dims: usize = 4;
    let mut roles_spec: Option<String> = None;
    let mut branching: usize = 8;
    let mut angle_count: usize = 5;
    let mut build_seed: u64 = 42;
    let mut k: usize = BENCH_K;
    let mut queries: usize = 256;
    let mut warmup: Option<usize> = None;
    let mut threads_list: Vec<usize> = vec![1, 4, 8];
    let mut seed: u64 = 13;
    let mut shards: usize = 1;
    let mut shards_set = false;
    let mut mutate_frac: f64 = 0.0;
    let mut raw = false;
    let mut slow_query_us: u64 = 0;
    let mut timeout_us: u64 = 0;
    let mut out = String::from("BENCH_queries.json");

    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next() {
        match flag {
            "--shards" => {
                shards = flags.parsed("--shards")?;
                shards_set = true;
            }
            "--mutate-frac" => mutate_frac = flags.parsed("--mutate-frac")?,
            "--raw" => raw = true,
            "--slow-query-us" => slow_query_us = flags.parsed("--slow-query-us")?,
            "--timeout-us" => timeout_us = flags.parsed("--timeout-us")?,
            "--synthetic" => {
                synthetic = Some(match flags.value("--synthetic")? {
                    "uniform" => Distribution::Uniform,
                    "correlated" => Distribution::Correlated,
                    "anti" | "anti-correlated" => Distribution::AntiCorrelated,
                    other => {
                        return Err(usage(format!(
                            "--synthetic: unknown distribution {other:?}"
                        )))
                    }
                })
            }
            "--n" => n = flags.parsed("--n")?,
            "--dims" => dims = flags.parsed("--dims")?,
            "--roles" => roles_spec = Some(flags.value("--roles")?.to_string()),
            "--branching" => branching = flags.parsed("--branching")?,
            "--angles" => angle_count = flags.parsed("--angles")?,
            "--k" => k = flags.parsed("--k")?,
            "--queries" => queries = flags.parsed("--queries")?,
            "--warmup" => warmup = Some(flags.parsed("--warmup")?),
            "--seed" => seed = flags.parsed("--seed")?,
            "--build-seed" => build_seed = flags.parsed("--build-seed")?,
            "--threads" => {
                let raw = flags.value("--threads")?;
                threads_list = raw
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|_| usage(format!("--threads: cannot parse {s:?}")))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--out" => out = flags.value("--out")?.to_string(),
            other if !other.starts_with('-') && path.is_none() => path = Some(other),
            other => return Err(usage(format!("unknown flag {other:?}"))),
        }
    }
    if k == 0 || queries == 0 {
        return Err(usage("--k and --queries must be at least 1"));
    }
    if shards == 0 {
        return Err(usage("--shards must be at least 1"));
    }
    if threads_list.is_empty() {
        return Err(usage("--threads needs a comma list of counts (0 = auto)"));
    }
    if !(0.0..1.0).contains(&mutate_frac) {
        return Err(usage("--mutate-frac must be in [0, 1)"));
    }

    // Obtain the engine: the snapshot's own, a wrap of its sd-index, a
    // re-shard of its dataset, or an ad-hoc synthetic build.
    let (engine, source) = match (path, synthetic) {
        (Some(p), None) => {
            let snap = Snapshot::load(p).map_err(runtime)?;
            let engine = match snap.engine {
                Some(e) => {
                    // Silently ignoring a disagreeing --shards would label
                    // the measurement with a layout it never ran.
                    if shards_set && shards != e.shard_count() {
                        return Err(usage(format!(
                            "--shards {shards} disagrees with the snapshot's engine manifest \
                             ({} shards); drop --shards or rebuild the snapshot",
                            e.shard_count()
                        )));
                    }
                    // A v3 snapshot's engine already carries writes: the
                    // numbers below would not be the pure-snapshot
                    // baseline future PRs compare against.
                    if e.has_mutations() {
                        eprintln!(
                            "warning: snapshot engine carries {} delta row(s) and {} \
                             tombstone(s) — measurements include that write pressure \
                             (run `sdq compact` first for a clean baseline)",
                            e.delta_rows(),
                            e.tombstone_count()
                        );
                    }
                    e
                }
                None => match snap.sd {
                    Some(sd) if shards == 1 => SdEngine::single(sd).map_err(runtime)?,
                    _ => match (snap.dataset, snap.roles) {
                        (Some(data), Some(roles)) => {
                            let options = EngineOptions {
                                shards,
                                threads: 0,
                                index: SdIndexOptions {
                                    pairing: PairingStrategy::Arbitrary,
                                    angles: angle_grid(angle_count)?,
                                    branching,
                                },
                            };
                            let (e, ms) = timed(|| SdEngine::build_with(data, &roles, &options));
                            let e = e.map_err(runtime)?;
                            println!(
                                "sharded the snapshot dataset into {} shard(s) in {ms:.1} ms",
                                e.shard_count()
                            );
                            e
                        }
                        _ => {
                            return Err(runtime(
                                "snapshot holds no engine, sd-index or dataset to bench",
                            ))
                        }
                    },
                },
            };
            (engine, format!("\"snapshot\": {}", json_str(p)))
        }
        (None, Some(dist)) => {
            let roles_spec =
                roles_spec.ok_or_else(|| usage("--synthetic bench needs --roles STR"))?;
            let roles = parse_roles(&roles_spec)
                .map_err(|_| usage(format!("--roles {roles_spec:?}: use 'a'/'r' per dim")))?;
            if roles.len() != dims {
                return Err(usage(format!(
                    "--roles names {} dims but --dims is {dims}",
                    roles.len()
                )));
            }
            let data = generate(dist, n, dims, build_seed);
            let options = EngineOptions {
                shards,
                threads: 0,
                index: SdIndexOptions {
                    pairing: PairingStrategy::Arbitrary,
                    angles: angle_grid(angle_count)?,
                    branching,
                },
            };
            let (engine, ms) = timed(|| SdEngine::build_with(data, &roles, &options));
            let engine = engine.map_err(runtime)?;
            println!(
                "built {}-shard engine over {n} x {dims}-D rows in {ms:.1} ms",
                engine.shard_count()
            );
            (
                engine,
                format!("\"synthetic\": {}", json_str(&format!("{dist:?}"))),
            )
        }
        (None, None) => return Err(usage("bench-query needs a snapshot path or --synthetic")),
        (Some(_), Some(_)) => {
            return Err(usage(
                "snapshot path and --synthetic are mutually exclusive",
            ))
        }
    };
    let mut engine = engine;
    let dims = engine.dims();
    let shards = engine.shard_count();
    let workload = uniform_queries(queries, dims, seed);

    // Single-query latency: scratch reuse, `warmup` discarded warm-up
    // queries (default: one full pass), then one timed pass per query.
    // Percentiles come from the engine's own latency histogram — the same
    // extraction a live scrape sees — with the sorted raw samples kept
    // behind --raw as the quantization-free cross-check.
    let warmup = warmup.unwrap_or(queries);
    let clean = measure_single_query(&mut engine, &workload, k, warmup, slow_query_us, timeout_us)?;
    if timeout_us > 0 {
        println!(
            "deadline {timeout_us} µs: {} of {queries} timed query(ies) tripped it",
            clean.deadline_hits
        );
    }
    let lat = &clean.hist;
    println!(
        "single query ({shards} shard(s), k = {k}, {queries} queries, {warmup} warm-up): \
         p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms, p99.9 {:.3} ms, mean {:.3} ms (histogram)",
        lat.p50, lat.p90, lat.p99, lat.p999, lat.mean
    );
    if raw {
        println!(
            "  raw samples: p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms, p99.9 {:.3} ms, \
             mean {:.3} ms",
            clean.raw.p50, clean.raw.p90, clean.raw.p99, clean.raw.p999, clean.raw.mean
        );
    }
    let prof_sum = &clean.prof;
    println!(
        "pruning (means/query): {:.0} blocks floor-pruned, {:.0} popped, {:.0} rows fetched, \
         {:.0} scored, {:.0} emitted",
        prof_sum.blocks_floor_pruned as f64 / queries as f64,
        prof_sum.blocks_popped as f64 / queries as f64,
        prof_sum.rows_fetched as f64 / queries as f64,
        prof_sum.points_scored as f64 / queries as f64,
        prof_sum.emitted as f64 / queries as f64,
    );

    // Batch throughput per worker count: best of three runs.
    let mut batch_rows = Vec::with_capacity(threads_list.len());
    for &t in &threads_list {
        let mut best_qps = 0.0f64;
        for _ in 0..3 {
            let (r, ms) = timed(|| engine.par_query_batch(&workload, k, t));
            r.map_err(runtime)?;
            best_qps = best_qps.max(queries as f64 / (ms / 1e3));
        }
        println!("batch {t} thread(s): {best_qps:.0} queries/s");
        batch_rows.push(format!("{{\"threads\": {t}, \"qps\": {best_qps:.1}}}"));
    }
    let clean_rows = engine.len();

    // Mutation pressure pass: apply ⌈frac·n⌉ inserts + deletes, re-measure
    // the single-query path against the delta region + tombstone mask.
    let mutations_json = if mutate_frac > 0.0 {
        let base_stats = engine.mutation_stats();
        let victims = engine.total_rows();
        let m = ((clean_rows as f64) * mutate_frac).ceil() as usize;
        let fresh = generate(Distribution::Uniform, m, dims, build_seed ^ 0x5eed);
        for (_, coords) in fresh.iter() {
            engine.insert(coords).map_err(runtime)?;
        }
        // Tombstone exactly m distinct pre-insert victims: the random
        // stream skips ids it already killed (`delete` reports newly-dead
        // only), and a sequential sweep finishes the quota when the
        // random draws keep colliding at large F — the reported count can
        // no longer drift from the applied one.
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut deleted = 0usize;
        let mut attempts = 0usize;
        while deleted < m && attempts < 64 * m.max(1) {
            attempts += 1;
            state = splitmix64(state);
            let id = (state % victims as u64) as u32;
            if engine.delete(sdq_core::PointId::new(id)).map_err(runtime)? {
                deleted += 1;
            }
        }
        let mut sweep = 0u32;
        while deleted < m && (sweep as usize) < victims {
            if engine
                .delete(sdq_core::PointId::new(sweep))
                .map_err(runtime)?
            {
                deleted += 1;
            }
            sweep += 1;
        }
        // The engine's own cumulative accounting must agree with what this
        // harness reports into the JSON.
        let stats = engine.mutation_stats();
        let ins_applied = stats.inserted_total - base_stats.inserted_total;
        let del_applied = stats.deleted_total - base_stats.deleted_total;
        if ins_applied != m as u64 || del_applied != deleted as u64 {
            return Err(runtime(format!(
                "mutation accounting mismatch: engine recorded {ins_applied} insert(s) / \
                 {del_applied} delete(s), harness reports {m} / {deleted}"
            )));
        }
        let mutated =
            measure_single_query(&mut engine, &workload, k, warmup, slow_query_us, timeout_us)?;
        let mlat = &mutated.hist;
        println!(
            "single query with {:.1}% delta + {deleted} tombstone(s): p50 {:.3} ms \
             ({:+.1}% vs clean), p99 {:.3} ms, mean {:.3} ms",
            100.0 * mutate_frac,
            mlat.p50,
            100.0 * (mlat.p50 - lat.p50) / lat.p50,
            mlat.p99,
            mlat.mean,
        );
        (
            format!(
                ",\n  \"mutations\": {{\"frac\": {mutate_frac}, \"inserted\": {m}, \
                 \"deleted\": {deleted}, \
                 \"single_query_ms\": {}}}",
                mlat.json()
            ),
            mutated.slow_queries,
            mutated.deadline_hits,
        )
    } else {
        (String::new(), 0, 0)
    };
    let (mutations_json, mutated_slow, mutated_deadline_hits) = mutations_json;
    let slow_queries = clean.slow_queries + mutated_slow;
    let deadline_hits = clean.deadline_hits + mutated_deadline_hits;

    // Host keys: trajectory numbers are only comparable when the CPU and
    // the kernels' dispatched ISA level are pinned next to them.
    let cpu = json_str(&cpu_model());
    let simd = json_str(sdq_core::kernels::active().name());
    let raw_json = if raw {
        format!(",\n  \"single_query_ms_raw\": {}", clean.raw.json())
    } else {
        String::new()
    };
    let json = format!(
        "{{\n  {source},\n  \"dataset\": {{\"rows\": {clean_rows}, \"dims\": {dims}}},\n  \
         \"shards\": {shards},\n  \
         \"k\": {k},\n  \"queries\": {queries},\n  \"warmup\": {warmup},\n  \"query_seed\": {seed},\n  \
         \"cpu\": {cpu},\n  \"simd\": {simd},\n  \
         \"percentile_source\": \"histogram\",\n  \
         \"slow_query_us\": {slow_query_us},\n  \"slow_queries\": {slow_queries},\n  \
         \"timeout_us\": {timeout_us},\n  \"deadline_hits\": {deadline_hits},\n  \
         \"single_query_ms\": {lat_json}{raw_json},\n  \
         \"profile\": {profile_json},\n  \
         \"batch\": [{batch}]{mutations_json}\n}}\n",
        lat_json = lat.json(),
        profile_json = profile_means_json(prof_sum, queries),
        batch = batch_rows.join(", "),
    );
    std::fs::write(&out, json).map_err(|e| runtime(format!("cannot write {out}: {e}")))?;
    println!("wrote {out}");
    Ok(())
}

/// Latency summary of one measured workload, nearest-rank percentiles
/// over the recorded per-query samples.
struct LatencySummary {
    p50: f64,
    p90: f64,
    p99: f64,
    p999: f64,
    mean: f64,
}

impl LatencySummary {
    fn from_samples(lat_ms: &mut [f64]) -> LatencySummary {
        LatencySummary {
            p50: percentile(lat_ms, 50.0),
            p90: percentile(lat_ms, 90.0),
            p99: percentile(lat_ms, 99.0),
            p999: percentile(lat_ms, 99.9),
            mean: lat_ms.iter().sum::<f64>() / lat_ms.len() as f64,
        }
    }

    /// Percentiles extracted from a telemetry histogram snapshot — the
    /// same numbers a live Prometheus scrape would derive.
    fn from_histogram(s: &HistoSnapshot) -> LatencySummary {
        LatencySummary {
            p50: s.quantile(0.50) / 1e6,
            p90: s.quantile(0.90) / 1e6,
            p99: s.quantile(0.99) / 1e6,
            p999: s.quantile(0.999) / 1e6,
            mean: s.mean_nanos() / 1e6,
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"p50\": {:.4}, \"p90\": {:.4}, \"p99\": {:.4}, \"p999\": {:.4}, \"mean\": {:.4}}}",
            self.p50, self.p90, self.p99, self.p999, self.mean
        )
    }
}

/// One measured single-query pass: histogram-extracted and raw-sample
/// latency summaries, summed execution counters, and the slow queries the
/// pass journaled.
struct MeasuredPass {
    /// Percentiles extracted from the pass's isolated latency histogram.
    hist: LatencySummary,
    /// Percentiles from the sorted raw wall-clock samples (`--raw`).
    raw: LatencySummary,
    /// Execution counters summed over the timed queries.
    prof: QueryProfile,
    /// Queries at or above the slow-query threshold during the pass.
    slow_queries: u64,
    /// Queries aborted by the `--timeout-us` deadline during the pass.
    deadline_hits: u64,
}

/// `warmup` discarded warm-up queries (cycling the workload), then one
/// timed pass per query with a reused scratch. The timed pass runs under
/// a fresh telemetry registry installed on the engine, so its histogram
/// holds exactly the measured samples (divide the returned counters by
/// `workload.len()` for per-query means).
fn measure_single_query(
    engine: &mut SdEngine,
    workload: &[SdQuery],
    k: usize,
    warmup: usize,
    slow_query_us: u64,
    timeout_us: u64,
) -> Result<MeasuredPass, CliError> {
    let mut scratch = EngineScratch::new();
    let mut sink = 0.0f64;
    for q in workload.iter().cycle().take(warmup) {
        sink += engine
            .query_with(q, k, &mut scratch)
            .map_err(runtime)?
            .iter()
            .map(|sp| sp.score)
            .sum::<f64>();
    }
    let tel = Telemetry::new();
    tel.set_slow_query_micros(slow_query_us);
    engine.set_telemetry(Arc::clone(&tel));
    let mut lat_ms = Vec::with_capacity(workload.len());
    let mut prof_sum = QueryProfile::new();
    let mut deadline_hits = 0u64;
    for q in workload {
        // Each timed query gets its own budget (the deadline clock starts
        // at construction); an aborted query still counts as a sample —
        // its wall time is the bound the deadline enforced.
        scratch.deadline = Deadline::within_micros(timeout_us);
        let (r, ms) = timed(|| engine.query_with(q, k, &mut scratch));
        match r {
            Ok(res) => sink += res.iter().map(|sp| sp.score).sum::<f64>(),
            Err(sdq_core::SdError::DeadlineExceeded { .. }) if timeout_us > 0 => {
                deadline_hits += 1;
            }
            Err(e) => return Err(runtime(e)),
        }
        prof_sum.merge(&scratch.profile);
        lat_ms.push(ms);
    }
    std::hint::black_box(sink);
    let hist = tel.query.snapshot();
    let slow_queries = tel
        .journal
        .snapshot()
        .iter()
        .filter(|r| matches!(r.kind, EventKind::SlowQuery { .. }))
        .count() as u64;
    Ok(MeasuredPass {
        hist: LatencySummary::from_histogram(&hist),
        raw: LatencySummary::from_samples(&mut lat_ms),
        prof: prof_sum,
        slow_queries,
        deadline_hits,
    })
}

/// The BENCH_queries.json `profile` key: mean execution counters per
/// query of the clean single-query measurement, so pruning-effectiveness
/// regressions show in the same diff as latency regressions.
fn profile_means_json(sum: &QueryProfile, queries: usize) -> String {
    let n = queries.max(1) as f64;
    let m = |v: u64| format!("{:.2}", v as f64 / n);
    format!(
        "{{\"queries\": {queries}, \"nodes_visited\": {}, \"envelope_nodes_rejected\": {}, \
         \"blocks_popped\": {}, \"blocks_floor_pruned\": {}, \"lanes_masked\": {}, \
         \"rows_fetched\": {}, \"points_gathered\": {}, \"points_scored\": {}, \
         \"kernel_batches\": {}, \"seen_hits\": {}, \"tombstones_skipped\": {}, \
         \"delta_rows_scanned\": {}, \"floor_updates\": {}, \"rounds\": {}, \
         \"merge_rounds\": {}, \"emitted\": {}}}",
        m(sum.nodes_visited),
        m(sum.envelope_nodes_rejected),
        m(sum.blocks_popped),
        m(sum.blocks_floor_pruned),
        m(sum.lanes_masked),
        m(sum.rows_fetched),
        m(sum.points_gathered),
        m(sum.points_scored),
        m(sum.kernel_batches),
        m(sum.seen_hits),
        m(sum.tombstones_skipped),
        m(sum.delta_rows_scanned),
        m(sum.floor_updates),
        m(sum.rounds),
        m(sum.merge_rounds),
        m(sum.emitted),
    )
}

/// The host CPU model, best effort: the first `model name` of
/// `/proc/cpuinfo` on Linux, the target architecture elsewhere.
fn cpu_model() -> String {
    if let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") {
        for line in info.lines() {
            if let Some(rest) = line.strip_prefix("model name") {
                if let Some((_, name)) = rest.split_once(':') {
                    return name.trim().to_string();
                }
            }
        }
    }
    std::env::consts::ARCH.to_string()
}

/// SplitMix64 step: the deterministic victim-id stream of `--mutate-frac`.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Minimal JSON string escaping (quotes and backslashes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
