//! Fault-injectable storage: the I/O seam the durability subsystem runs
//! through.
//!
//! Everything the write-ahead log and the checkpoint rotation do to stable
//! storage goes through the [`Storage`] trait — append, whole-file rewrite,
//! rename, truncate, `fsync` of files and of the directory. Two
//! implementations exist:
//!
//! * [`DiskStorage`] — the real thing: one directory on the local
//!   filesystem, with honest `fsync` calls (`File::sync_all` for file
//!   contents, an fsync of the directory fd for entry durability after
//!   renames).
//! * [`MemStorage`] — a deterministic in-memory filesystem model with
//!   scripted failpoints ([`FaultScript`]): fail the Nth I/O, tear a write
//!   after K bytes, or crash at an exact I/O point. It distinguishes
//!   *volatile* state (what a process observes) from *durable* state (what
//!   survives a power loss): file contents become durable on
//!   [`Storage::sync_file`], directory entries (creates, renames, removals)
//!   on [`Storage::sync_dir`]. [`MemStorage::crash_image`] then produces
//!   the post-crash filesystem — durable state plus a deterministic,
//!   possibly torn, prefix of whatever was in flight — which is exactly
//!   what the crash-consistency proptests reopen and verify.
//!
//! The model errs on the side of adversity where it matters: un-synced
//! appended bytes survive a crash only as an arbitrary prefix (so torn WAL
//! tails are exercised), and entry changes that were not followed by a
//! directory sync may or may not have reached disk. A rename is atomic
//! with respect to the crash — both of its entry edits share one survival
//! decision — matching `rename(2)` semantics.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The abstract flat-directory store the durability layer writes to.
///
/// Names are plain file names (no separators); the directory itself is
/// fixed per store. All mutating operations count as one I/O point each in
/// fault-injecting implementations.
pub trait Storage {
    /// Reads the whole file.
    fn read(&self, name: &str) -> io::Result<Vec<u8>>;
    /// Reads the whole file as a [`MappedBytes`] buffer suitable for
    /// zero-copy (format v5) snapshot opening: the returned bytes start on
    /// a 64-byte boundary and stay valid as long as any clone of the
    /// buffer (or a keepalive derived from it) is alive. The default
    /// copies through [`Storage::read`]; [`DiskStorage`] overrides it with
    /// a real file mapping where the platform provides one.
    fn read_mapped(&self, name: &str) -> io::Result<MappedBytes> {
        Ok(MappedBytes::copy_from(&self.read(name)?))
    }
    /// Whether the file currently exists.
    fn exists(&self, name: &str) -> bool;
    /// Current length of the file in bytes.
    fn file_len(&self, name: &str) -> io::Result<u64>;
    /// Creates or truncates the file and writes `bytes`.
    fn write_file(&mut self, name: &str, bytes: &[u8]) -> io::Result<()>;
    /// Appends `bytes` to the file, creating it when missing.
    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()>;
    /// Truncates (or extends with zeroes) the file to `len` bytes.
    fn set_len(&mut self, name: &str, len: u64) -> io::Result<()>;
    /// Atomically renames `from` to `to` (replacing `to`).
    fn rename(&mut self, from: &str, to: &str) -> io::Result<()>;
    /// Removes the file.
    fn remove(&mut self, name: &str) -> io::Result<()>;
    /// Makes the file's *contents* durable (`fsync`).
    fn sync_file(&mut self, name: &str) -> io::Result<()>;
    /// Makes the directory's *entries* durable (fsync of the directory):
    /// creates, renames and removals are crash-safe only after this.
    fn sync_dir(&mut self) -> io::Result<()>;
}

/// Fsyncs the directory containing `path` so a just-renamed entry is
/// durable. A no-op on platforms where directories cannot be opened.
pub fn fsync_parent_dir(path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    #[cfg(unix)]
    {
        std::fs::File::open(&parent)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = parent;
        Ok(())
    }
}

/// Crash-safe whole-file replacement: write a sibling temp file, `fsync`
/// it, rename it over `path`, then `fsync` the parent directory so the
/// rename itself is durable. The temp name extends the full file name
/// (`x.sdq` → `x.sdq.tmp`) so distinct targets never collide.
pub fn atomic_write_path(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    fsync_parent_dir(path)
}

// ─── MappedBytes ────────────────────────────────────────────────────────────

/// 64-byte-aligned backing storage for the owned [`MappedBytes`] fallback.
#[repr(C, align(64))]
#[derive(Clone, Copy)]
struct AlignedChunk([u8; 64]);

enum MappedInner {
    /// A read-only private file mapping (page-aligned, so 64-aligned).
    #[cfg(unix)]
    Mapped {
        ptr: *mut core::ffi::c_void,
        len: usize,
    },
    /// An owned copy in 64-aligned storage; `len` is the byte length (the
    /// final chunk may be partially used).
    Owned {
        chunks: Vec<AlignedChunk>,
        len: usize,
    },
}

// Safety: the mapping is immutable (PROT_READ, MAP_PRIVATE) for its whole
// lifetime and the owned variant is never written after construction.
unsafe impl Send for MappedInner {}
unsafe impl Sync for MappedInner {}

impl Drop for MappedInner {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let MappedInner::Mapped { ptr, len } = *self {
            // Safety: `ptr`/`len` are exactly what mmap returned.
            unsafe {
                sys::munmap(ptr, len);
            }
        }
    }
}

#[cfg(unix)]
mod sys {
    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        pub fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }
}

/// A read-only, 64-byte-aligned byte buffer backing a zero-copy snapshot:
/// either a private file mapping (Unix) or an owned aligned copy. Cheap to
/// clone; the underlying memory lives until the last clone (or derived
/// keepalive) drops.
#[derive(Clone)]
pub struct MappedBytes {
    inner: Arc<MappedInner>,
}

impl std::fmt::Debug for MappedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedBytes")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

impl MappedBytes {
    /// An owned, 64-aligned copy of `bytes` (the portable fallback).
    pub fn copy_from(bytes: &[u8]) -> Self {
        let n_chunks = bytes.len().div_ceil(64);
        let mut chunks = vec![AlignedChunk([0u8; 64]); n_chunks];
        // Safety: the chunk storage is `n_chunks * 64 >= bytes.len()`
        // contiguous bytes.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                chunks.as_mut_ptr().cast::<u8>(),
                bytes.len(),
            );
        }
        MappedBytes {
            inner: Arc::new(MappedInner::Owned {
                chunks,
                len: bytes.len(),
            }),
        }
    }

    /// Maps the file at `path` read-only. Falls back to an owned aligned
    /// copy when mapping is unavailable (non-Unix platforms, empty files,
    /// or a failed `mmap`).
    pub fn map_file(path: &Path) -> io::Result<Self> {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len();
            let len =
                usize::try_from(len).map_err(|_| io::Error::other("file too large to map"))?;
            if len > 0 {
                // Safety: mapping a readable fd PROT_READ/MAP_PRIVATE; the
                // result (when not MAP_FAILED) is `len` valid bytes that
                // stay valid until munmap — the fd may close immediately.
                let ptr = unsafe {
                    sys::mmap(
                        std::ptr::null_mut(),
                        len,
                        sys::PROT_READ,
                        sys::MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if ptr as isize != -1 {
                    return Ok(MappedBytes {
                        inner: Arc::new(MappedInner::Mapped { ptr, len }),
                    });
                }
            }
        }
        Ok(MappedBytes::copy_from(&std::fs::read(path)?))
    }

    /// `true` when backed by a real file mapping (RSS scales with touched
    /// pages, not file size).
    pub fn is_mapped(&self) -> bool {
        #[cfg(unix)]
        {
            matches!(*self.inner, MappedInner::Mapped { .. })
        }
        #[cfg(not(unix))]
        {
            false
        }
    }

    /// The bytes. The slice start is 64-byte aligned.
    pub fn as_slice(&self) -> &[u8] {
        match &*self.inner {
            #[cfg(unix)]
            MappedInner::Mapped { ptr, len } => {
                // Safety: the mapping is alive as long as `self.inner` is.
                unsafe { std::slice::from_raw_parts(ptr.cast::<u8>().cast_const(), *len) }
            }
            MappedInner::Owned { chunks, len } => {
                // Safety: `len <= chunks.len() * 64` by construction.
                unsafe { std::slice::from_raw_parts(chunks.as_ptr().cast::<u8>(), *len) }
            }
        }
    }

    /// Byte length.
    pub fn len(&self) -> usize {
        match &*self.inner {
            #[cfg(unix)]
            MappedInner::Mapped { len, .. } => *len,
            MappedInner::Owned { len, .. } => *len,
        }
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A type-erased keepalive handle pinning the buffer's memory — what
    /// mapped [`sdq_core::ColumnarView`]s hold to outlive this value.
    pub fn keep(&self) -> Arc<dyn std::any::Any + Send + Sync> {
        self.inner.clone()
    }
}

impl std::ops::Deref for MappedBytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

// ─── DiskStorage ────────────────────────────────────────────────────────────

/// [`Storage`] over one real directory, with honest fsyncs.
#[derive(Debug, Clone)]
pub struct DiskStorage {
    dir: PathBuf,
}

impl DiskStorage {
    /// A store rooted at `dir` (created if missing).
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        let dir = if dir.as_os_str().is_empty() {
            PathBuf::from(".")
        } else {
            dir
        };
        std::fs::create_dir_all(&dir)?;
        Ok(DiskStorage { dir })
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }
}

impl Storage for DiskStorage {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        std::fs::read(self.path(name))
    }

    fn read_mapped(&self, name: &str) -> io::Result<MappedBytes> {
        MappedBytes::map_file(&self.path(name))
    }

    fn exists(&self, name: &str) -> bool {
        self.path(name).is_file()
    }

    fn file_len(&self, name: &str) -> io::Result<u64> {
        Ok(std::fs::metadata(self.path(name))?.len())
    }

    fn write_file(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(self.path(name), bytes)
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        f.write_all(bytes)
    }

    fn set_len(&mut self, name: &str, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(name))?;
        f.set_len(len)
    }

    fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
        std::fs::rename(self.path(from), self.path(to))
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        std::fs::remove_file(self.path(name))
    }

    fn sync_file(&mut self, name: &str) -> io::Result<()> {
        // fsync through a read handle: contents only, no O_APPEND games.
        std::fs::File::open(self.path(name))?.sync_all()
    }

    fn sync_dir(&mut self) -> io::Result<()> {
        #[cfg(unix)]
        {
            std::fs::File::open(&self.dir)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            Ok(())
        }
    }
}

// ─── fault scripting ────────────────────────────────────────────────────────

/// One scripted failpoint, matched against the 0-based index of the
/// mutating I/O operation it should hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The I/O at this point fails with an injected error and has no
    /// effect (a transient write or fsync failure).
    Fail { at: u64 },
    /// An append/rewrite at this point persists only the first `keep`
    /// bytes of its payload, then fails — a torn write.
    Torn { at: u64, keep: usize },
    /// The process (and machine) dies at this point: the I/O fails, every
    /// later operation fails, and [`MemStorage::crash_image`] yields what
    /// survived.
    Crash { at: u64 },
    /// I/O points `at..at + times` fail with a *transient* error
    /// ([`io::ErrorKind::Interrupted`], the EINTR shape) and have no
    /// effect; the next attempt succeeds. Because every attempt consumes
    /// one I/O point, this models "op N fails its first M attempts, then
    /// succeeds" — the deterministic test bed for retry-with-backoff.
    Transient { at: u64, times: u32 },
    /// The I/O at this point fails with `io::Error::from_raw_os_error`
    /// (e.g. 28 = ENOSPC, 5 = EIO) and has no effect — a *permanent*
    /// environment failure the durable layer must not retry through.
    Errno { at: u64, errno: i32 },
}

impl Fault {
    /// Whether this failpoint fires at I/O point `point`.
    fn hits(&self, point: u64) -> bool {
        match *self {
            Fault::Fail { at } | Fault::Torn { at, .. } | Fault::Crash { at } => at == point,
            Fault::Transient { at, times } => point >= at && point - at < u64::from(times),
            Fault::Errno { at, .. } => at == point,
        }
    }
}

/// A deterministic list of failpoints driving a [`MemStorage`].
#[derive(Debug, Clone, Default)]
pub struct FaultScript {
    faults: Vec<Fault>,
}

impl FaultScript {
    /// No faults.
    pub fn none() -> Self {
        FaultScript::default()
    }

    /// A script with exactly one crash at I/O point `at`.
    pub fn crash_at(at: u64) -> Self {
        FaultScript {
            faults: vec![Fault::Crash { at }],
        }
    }

    /// A script where the op at point `at` fails transiently for its first
    /// `times` attempts (each retry consumes one point), then succeeds.
    pub fn transient_at(at: u64, times: u32) -> Self {
        FaultScript {
            faults: vec![Fault::Transient { at, times }],
        }
    }

    /// A script with exactly one permanent-errno failure (`ENOSPC` = 28,
    /// `EIO` = 5, …) at I/O point `at`.
    pub fn errno_at(at: u64, errno: i32) -> Self {
        FaultScript {
            faults: vec![Fault::Errno { at, errno }],
        }
    }

    /// Adds a failpoint.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    fn fault_at(&self, point: u64) -> Option<Fault> {
        self.faults.iter().copied().find(|f| f.hits(point))
    }
}

fn injected(what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what}"))
}

/// SplitMix64 — the deterministic per-(crash point, tag) coin the crash
/// image flips for "did this un-synced change reach disk?".
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

// ─── MemStorage ─────────────────────────────────────────────────────────────

#[derive(Debug, Clone, Default)]
struct FileData {
    /// Contents guaranteed to survive a crash (last `sync_file`).
    durable: Vec<u8>,
    /// Contents the process observes.
    volatile: Vec<u8>,
}

/// The in-memory fault-injection filesystem. See the module docs for the
/// crash model.
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    files: BTreeMap<u64, FileData>,
    /// Directory as the process observes it.
    entries: BTreeMap<String, u64>,
    /// Directory as it would survive a crash (last `sync_dir`).
    durable_entries: BTreeMap<String, u64>,
    /// Entry-dirtying I/O point per name since the last `sync_dir`; a
    /// rename stamps both of its names with one point, so the crash image
    /// keeps or drops the pair atomically.
    dirty_entries: BTreeMap<String, u64>,
    next_id: u64,
    ops: u64,
    /// Mutating operations *attempted*, including ones refused because the
    /// store had already crashed (unlike `ops`, the failpoint clock, which
    /// only advances while alive). Retry tests assert against this.
    attempted: u64,
    script: FaultScript,
    crashed_at: Option<u64>,
}

impl MemStorage {
    /// An empty, fault-free store.
    pub fn new() -> Self {
        MemStorage::default()
    }

    /// Installs the failpoint script for subsequent operations.
    pub fn set_script(&mut self, script: FaultScript) {
        self.script = script;
    }

    /// Mutating I/O operations performed so far (the failpoint clock).
    pub fn io_points(&self) -> u64 {
        self.ops
    }

    /// Mutating I/O operations *attempted* so far, retries and post-crash
    /// refusals included — the counter retry logic is asserted against.
    pub fn ops_attempted(&self) -> u64 {
        self.attempted
    }

    /// Whether a scripted crash has fired.
    pub fn crashed(&self) -> bool {
        self.crashed_at.is_some()
    }

    /// The filesystem as found after the scripted crash and a reboot:
    /// durable state plus a deterministic, possibly torn, prefix of the
    /// in-flight changes. Panics if no crash was scripted and hit.
    pub fn crash_image(&self) -> MemStorage {
        let point = self.crashed_at.expect("crash_image without a crash");
        let mut names: Vec<&String> = self.durable_entries.keys().collect();
        for name in self.entries.keys() {
            if !self.durable_entries.contains_key(name) {
                names.push(name);
            }
        }
        let mut out = MemStorage::new();
        for name in names {
            let durable_id = self.durable_entries.get(name);
            let volatile_id = self.entries.get(name);
            let survivor = if durable_id == volatile_id {
                durable_id
            } else {
                // Entry changed since the last sync_dir: the change may or
                // may not have hit disk. One coin per dirtying operation,
                // so renames stay atomic.
                let change = self.dirty_entries.get(name).copied().unwrap_or(0);
                if splitmix64(point ^ splitmix64(change)) & 1 == 1 {
                    volatile_id
                } else {
                    durable_id
                }
            };
            let Some(&id) = survivor else { continue };
            let Some(f) = self.files.get(&id) else {
                continue;
            };
            let content = if f.volatile.len() >= f.durable.len()
                && f.volatile[..f.durable.len()] == f.durable[..]
            {
                // Pure append since the last sync: an arbitrary prefix of
                // the un-synced suffix survives — the torn-tail generator.
                let suffix = f.volatile.len() - f.durable.len();
                let keep = (splitmix64(point ^ fnv1a(name.as_bytes())) as usize) % (suffix + 1);
                f.volatile[..f.durable.len() + keep].to_vec()
            } else if splitmix64(point ^ fnv1a(name.as_bytes()) ^ 0x5eed) & 1 == 1 {
                f.volatile.clone()
            } else {
                f.durable.clone()
            };
            let id = out.next_id;
            out.next_id += 1;
            out.files.insert(
                id,
                FileData {
                    durable: content.clone(),
                    volatile: content,
                },
            );
            out.entries.insert(name.clone(), id);
            out.durable_entries.insert(name.clone(), id);
        }
        out
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.crashed_at.is_some() {
            return Err(io::Error::other("storage crashed"));
        }
        Ok(())
    }

    /// Consumes one I/O point; returns the fault scheduled for it, if any,
    /// with `Crash` already latched.
    fn step(&mut self) -> io::Result<Option<Fault>> {
        self.attempted += 1;
        self.check_alive()?;
        let point = self.ops;
        self.ops += 1;
        match self.script.fault_at(point) {
            Some(Fault::Crash { .. }) => {
                self.crashed_at = Some(point);
                Err(injected("crash"))
            }
            Some(Fault::Transient { .. }) => Err(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected transient fault",
            )),
            Some(Fault::Errno { errno, .. }) => Err(io::Error::from_raw_os_error(errno)),
            other => Ok(other),
        }
    }

    fn file_id(&mut self, name: &str, create: bool) -> io::Result<u64> {
        if let Some(&id) = self.entries.get(name) {
            return Ok(id);
        }
        if !create {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("{name}: not found"),
            ));
        }
        let id = self.next_id;
        self.next_id += 1;
        self.files.insert(id, FileData::default());
        self.entries.insert(name.to_string(), id);
        // Creation dirties the entry at the point the caller just consumed.
        self.dirty_entries
            .insert(name.to_string(), self.ops.saturating_sub(1));
        Ok(id)
    }
}

impl Storage for MemStorage {
    fn read(&self, name: &str) -> io::Result<Vec<u8>> {
        self.check_alive()?;
        let id = self
            .entries
            .get(name)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{name}: not found")))?;
        Ok(self.files[id].volatile.clone())
    }

    fn exists(&self, name: &str) -> bool {
        self.crashed_at.is_none() && self.entries.contains_key(name)
    }

    fn file_len(&self, name: &str) -> io::Result<u64> {
        self.read(name).map(|b| b.len() as u64)
    }

    fn write_file(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let fault = self.step()?;
        let id = self.file_id(name, true)?;
        let f = self.files.get_mut(&id).expect("file exists");
        match fault {
            Some(Fault::Fail { .. }) => Err(injected("write failed")),
            Some(Fault::Torn { keep, .. }) => {
                f.volatile = bytes[..keep.min(bytes.len())].to_vec();
                Err(injected("torn write"))
            }
            _ => {
                f.volatile = bytes.to_vec();
                Ok(())
            }
        }
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let fault = self.step()?;
        let id = self.file_id(name, true)?;
        let f = self.files.get_mut(&id).expect("file exists");
        match fault {
            Some(Fault::Fail { .. }) => Err(injected("append failed")),
            Some(Fault::Torn { keep, .. }) => {
                f.volatile
                    .extend_from_slice(&bytes[..keep.min(bytes.len())]);
                Err(injected("torn append"))
            }
            _ => {
                f.volatile.extend_from_slice(bytes);
                Ok(())
            }
        }
    }

    fn set_len(&mut self, name: &str, len: u64) -> io::Result<()> {
        let fault = self.step()?;
        if matches!(fault, Some(Fault::Fail { .. } | Fault::Torn { .. })) {
            return Err(injected("set_len failed"));
        }
        let id = self.file_id(name, false)?;
        let f = self.files.get_mut(&id).expect("file exists");
        f.volatile.resize(len as usize, 0);
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
        let fault = self.step()?;
        if matches!(fault, Some(Fault::Fail { .. } | Fault::Torn { .. })) {
            return Err(injected("rename failed"));
        }
        let point = self.ops - 1;
        let id = self
            .entries
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{from}: not found")))?;
        self.entries.insert(to.to_string(), id);
        self.dirty_entries.insert(from.to_string(), point);
        self.dirty_entries.insert(to.to_string(), point);
        Ok(())
    }

    fn remove(&mut self, name: &str) -> io::Result<()> {
        let fault = self.step()?;
        if matches!(fault, Some(Fault::Fail { .. } | Fault::Torn { .. })) {
            return Err(injected("remove failed"));
        }
        let point = self.ops - 1;
        self.entries
            .remove(name)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("{name}: not found")))?;
        self.dirty_entries.insert(name.to_string(), point);
        Ok(())
    }

    fn sync_file(&mut self, name: &str) -> io::Result<()> {
        let fault = self.step()?;
        if matches!(fault, Some(Fault::Fail { .. } | Fault::Torn { .. })) {
            return Err(injected("fsync failed"));
        }
        let id = self.file_id(name, false)?;
        let f = self.files.get_mut(&id).expect("file exists");
        f.durable = f.volatile.clone();
        Ok(())
    }

    fn sync_dir(&mut self) -> io::Result<()> {
        let fault = self.step()?;
        if matches!(fault, Some(Fault::Fail { .. } | Fault::Torn { .. })) {
            return Err(injected("directory fsync failed"));
        }
        self.durable_entries = self.entries.clone();
        self.dirty_entries.clear();
        // A directory sync does not sync file *contents*; durable bytes
        // still track sync_file only.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_roundtrips() {
        let mut s = MemStorage::new();
        s.write_file("a", b"hello").unwrap();
        s.append("a", b" world").unwrap();
        assert_eq!(s.read("a").unwrap(), b"hello world");
        assert_eq!(s.file_len("a").unwrap(), 11);
        s.rename("a", "b").unwrap();
        assert!(!s.exists("a"));
        assert_eq!(s.read("b").unwrap(), b"hello world");
        s.set_len("b", 5).unwrap();
        assert_eq!(s.read("b").unwrap(), b"hello");
        s.remove("b").unwrap();
        assert!(!s.exists("b"));
    }

    #[test]
    fn fail_fault_has_no_effect() {
        let mut s = MemStorage::new();
        s.write_file("a", b"base").unwrap(); // point 0
        let mut script = FaultScript::none();
        script.push(Fault::Fail { at: 1 });
        s.set_script(script);
        assert!(s.append("a", b"more").is_err()); // point 1 fails
        assert_eq!(s.read("a").unwrap(), b"base");
        s.append("a", b"more").unwrap(); // point 2 fine
        assert_eq!(s.read("a").unwrap(), b"basemore");
    }

    #[test]
    fn torn_fault_keeps_a_prefix() {
        let mut s = MemStorage::new();
        s.write_file("a", b"base").unwrap();
        let mut script = FaultScript::none();
        script.push(Fault::Torn { at: 1, keep: 2 });
        s.set_script(script);
        assert!(s.append("a", b"wxyz").is_err());
        assert_eq!(s.read("a").unwrap(), b"basewx");
    }

    #[test]
    fn transient_fault_fails_then_succeeds() {
        let mut s = MemStorage::new();
        s.write_file("a", b"base").unwrap(); // point 0
        s.set_script(FaultScript::transient_at(1, 2));
        for _ in 0..2 {
            let err = s.append("a", b"x").unwrap_err(); // points 1, 2
            assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        }
        s.append("a", b"x").unwrap(); // point 3
        assert_eq!(s.read("a").unwrap(), b"basex");
        assert_eq!(s.ops_attempted(), 4);
    }

    #[test]
    fn errno_fault_surfaces_raw_os_error() {
        let mut s = MemStorage::new();
        s.set_script(FaultScript::errno_at(0, 28)); // ENOSPC
        let err = s.write_file("a", b"x").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28));
        assert!(!s.exists("a"));
        s.write_file("a", b"x").unwrap(); // point 1 is clean
    }

    #[test]
    fn crash_drops_unsynced_suffix_deterministically() {
        let build = |crash_at: u64| {
            let mut s = MemStorage::new();
            s.write_file("wal", b"AAAA").unwrap(); // 0
            s.sync_file("wal").unwrap(); // 1
            s.sync_dir().unwrap(); // 2
            s.append("wal", b"BBBBBBBB").unwrap(); // 3 — never synced
            s.set_script(FaultScript::crash_at(crash_at));
            let _ = s.append("wal", b"CC"); // 4 — crashes
            s.crash_image()
        };
        let img1 = build(4);
        let img2 = build(4);
        let a = img1.read("wal").unwrap();
        let b = img2.read("wal").unwrap();
        assert_eq!(a, b, "crash image must be deterministic");
        // The synced prefix always survives; the un-synced suffix is a
        // prefix of what was appended.
        assert!(a.len() >= 4 && a.len() <= 12);
        assert_eq!(&a[..4], b"AAAA");
        assert!(a[4..].iter().all(|&c| c == b'B'));
    }

    #[test]
    fn crash_keeps_rename_atomic() {
        // Renames survive or vanish as a unit: the crash image never loses
        // the file by keeping only half of the entry pair.
        for crash_at in 4..7 {
            let mut s = MemStorage::new();
            s.set_script(FaultScript::crash_at(crash_at));
            s.write_file("data", b"old").unwrap(); // 0
            s.sync_file("data").unwrap(); // 1
            s.sync_dir().unwrap(); // 2
            s.write_file("data.tmp", b"new").unwrap(); // 3
            let _ = s.sync_file("data.tmp"); // 4 (crash candidate)
            let _ = s.rename("data.tmp", "data"); // 5 (crash candidate)
            let _ = s.sync_dir(); // 6 (crash candidate)
            assert!(s.crashed(), "crash point {crash_at} never reached");
            let img = s.crash_image();
            let data = img.read("data").expect("data must always exist");
            assert!(data == b"old" || data == b"new", "got {data:?}");
        }
    }

    #[test]
    fn after_crash_every_operation_fails() {
        let mut s = MemStorage::new();
        s.set_script(FaultScript::crash_at(0));
        assert!(s.write_file("a", b"x").is_err());
        assert!(s.append("a", b"x").is_err());
        assert!(s.read("a").is_err());
        assert!(s.sync_dir().is_err());
        assert!(!s.exists("a"));
    }

    #[test]
    fn disk_storage_roundtrips() {
        let dir = std::env::temp_dir().join(format!("sdq-io-test-{}", std::process::id()));
        let mut s = DiskStorage::new(&dir).unwrap();
        s.write_file("a", b"hel").unwrap();
        s.append("a", b"lo").unwrap();
        s.sync_file("a").unwrap();
        assert_eq!(s.read("a").unwrap(), b"hello");
        s.rename("a", "b").unwrap();
        s.sync_dir().unwrap();
        assert!(s.exists("b") && !s.exists("a"));
        s.set_len("b", 2).unwrap();
        assert_eq!(s.read("b").unwrap(), b"he");
        s.remove("b").unwrap();
        assert!(!s.exists("b"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
