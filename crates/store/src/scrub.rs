//! Proactive integrity scrubbing: walk every CRC-protected region of a
//! snapshot (and its WAL sidecar), report what fails, and — in repair
//! mode — restore a servable state without guessing.
//!
//! A scrub is the offline complement of the lazy per-region verification
//! queries perform ([`SectionIntegrity::ensure`]): it forces every region,
//! including ones no query has touched, so silent media decay is found
//! before a query trips over it.
//!
//! Repair is deliberately conservative — it only performs actions whose
//! correctness follows from the durability contract:
//!
//! * a **torn WAL tail** is truncated to the last intact record (exactly
//!   what [`DurableEngine::open`](crate::DurableEngine::open) would do);
//! * a **corrupt snapshot** beside a fully-valid higher-generation
//!   `NAME.tmp` (an interrupted checkpoint whose rename never happened)
//!   is replaced by promoting the temp file;
//! * anything still failing is **quarantined** — renamed to
//!   `<name>.quarantined` so the bytes survive for forensics — and
//!   reported; acknowledged writes may be lost, which the report says
//!   out loud rather than papering over.

use std::path::{Path, PathBuf};

use sdq_core::{CrcState, SdError, SectionIntegrity};

use crate::io::fsync_parent_dir;
use crate::{wal, Snapshot};

/// What one region scan found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionFinding {
    /// Region name (`shard0/pair1/blocks.xs`, `wal`, `snapshot`).
    pub name: String,
    /// Byte offset inside its file (0 for whole-file findings).
    pub offset: u64,
    /// Region length in bytes.
    pub len: u64,
    /// What failed.
    pub detail: String,
}

/// The outcome of [`scrub_path`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// CRC regions that verified clean (snapshot regions + the WAL's
    /// intact records counted as one region).
    pub regions_ok: u64,
    /// Regions that failed verification.
    pub regions_failed: u64,
    /// Every failed region, with detail.
    pub failures: Vec<RegionFinding>,
    /// Container version of the snapshot, when its header parsed.
    pub snapshot_version: Option<u32>,
    /// Intact WAL records found (before any torn tail).
    pub wal_records: u64,
    /// Torn-tail bytes found past the last intact WAL record.
    pub wal_torn_bytes: u64,
    /// Repair actions performed (repair mode only), in order.
    pub repaired: Vec<String>,
    /// Files renamed aside as `<name>.quarantined` (repair mode only).
    pub quarantined: Vec<String>,
    /// `true` when a repair action may have dropped acknowledged writes
    /// (a quarantined WAL); torn-tail truncation of *unacknowledged*
    /// bytes does not set this.
    pub data_loss_possible: bool,
}

impl ScrubReport {
    /// `true` when every scanned region verified and nothing had to be
    /// quarantined.
    pub fn clean(&self) -> bool {
        self.regions_failed == 0 && self.quarantined.is_empty()
    }
}

fn fail(report: &mut ScrubReport, name: &str, offset: u64, len: u64, detail: String) {
    report.regions_failed += 1;
    report.failures.push(RegionFinding {
        name: name.to_string(),
        offset,
        len,
        detail,
    });
}

/// Forces verification of every framed region of one snapshot file,
/// folding the results into `report` under `label`.
fn scan_snapshot(path: &Path, label: &str, report: &mut ScrubReport) -> bool {
    match Snapshot::open_mapped(path) {
        Ok(mapped) => {
            report.snapshot_version = report.snapshot_version.or(Some(mapped.version()));
            let regions: &[std::sync::Arc<SectionIntegrity>] = mapped.regions();
            if regions.is_empty() {
                // Pre-v5 container: the eager decode above already
                // verified every embedded checksum — one implicit region.
                report.regions_ok += 1;
                return true;
            }
            let mut ok = true;
            for region in regions {
                match region.ensure() {
                    Ok(()) => report.regions_ok += 1,
                    Err(e) => {
                        debug_assert_eq!(region.state(), CrcState::Failed);
                        ok = false;
                        fail(
                            report,
                            &format!("{label}:{}", region.name()),
                            region.file_offset(),
                            region.len(),
                            e.to_string(),
                        );
                    }
                }
            }
            ok
        }
        Err(e) => {
            fail(report, label, 0, 0, e.to_string());
            false
        }
    }
}

/// Quarantines `path` by renaming it to `<path>.quarantined`.
fn quarantine(path: &Path, report: &mut ScrubReport) -> Result<(), SdError> {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".quarantined");
    let target = path.with_file_name(name);
    std::fs::rename(path, &target)
        .and_then(|()| fsync_parent_dir(&target))
        .map_err(|e| SdError::SnapshotIo(format!("{}: quarantine failed: {e}", path.display())))?;
    report.quarantined.push(target.display().to_string());
    Ok(())
}

/// Scrubs the snapshot at `path` and its `.wal` sidecar: every CRC region
/// is force-verified and the findings reported. With `repair`, the
/// recoverable defects are fixed in place (torn-tail truncation, temp-file
/// promotion) and unrecoverable files are quarantined; without it, the
/// scan is strictly read-only.
pub fn scrub_path(path: impl AsRef<Path>, repair: bool) -> Result<ScrubReport, SdError> {
    let path = path.as_ref();
    let mut report = ScrubReport::default();
    if !path.is_file() {
        return Err(SdError::SnapshotIo(format!(
            "{}: not found",
            path.display()
        )));
    }

    let mut snapshot_ok = scan_snapshot(path, "snapshot", &mut report);

    // An interrupted checkpoint can leave a fully-written `NAME.tmp` whose
    // rename never happened. When the main snapshot is corrupt, a valid
    // higher-generation temp file is the *newer* durable state — promote
    // it (the then-stale WAL is discarded by the generation gate on open).
    let tmp: PathBuf = {
        let mut name = path.file_name().unwrap_or_default().to_os_string();
        name.push(".tmp");
        path.with_file_name(name)
    };
    if !snapshot_ok && repair && tmp.is_file() {
        let mut tmp_report = ScrubReport::default();
        if scan_snapshot(&tmp, "snapshot.tmp", &mut tmp_report) {
            let newer = match (
                Snapshot::open_mapped(&tmp)
                    .ok()
                    .and_then(|m| m.snapshot.durability),
                Snapshot::open_mapped(path)
                    .ok()
                    .and_then(|m| m.snapshot.durability),
            ) {
                (Some(t), Some(s)) => t.generation > s.generation,
                // The main snapshot does not even parse far enough to
                // compare generations; the verified temp wins.
                (Some(_), None) => true,
                _ => false,
            };
            if newer {
                quarantine(path, &mut report)?;
                std::fs::rename(&tmp, path)
                    .and_then(|()| fsync_parent_dir(path))
                    .map_err(|e| {
                        SdError::SnapshotIo(format!("{}: promote failed: {e}", tmp.display()))
                    })?;
                report.repaired.push(format!(
                    "promoted {} over the corrupt snapshot",
                    tmp.display()
                ));
                // Re-scan the promoted file so the totals describe the
                // repaired state.
                report.regions_ok += tmp_report.regions_ok;
                snapshot_ok = true;
            }
        }
    }
    if !snapshot_ok && repair {
        // No valid replacement: set the corrupt snapshot aside so serving
        // never trusts it. Its WAL (if any) is kept for forensics too.
        if path.is_file() {
            quarantine(path, &mut report)?;
            report.data_loss_possible = true;
        }
    }

    // The WAL sidecar: the header is CRC'd, every record is CRC'd, and a
    // torn tail (a crash mid-append) is the one defect that is *expected*
    // and safely repairable by truncation.
    let wal_path: PathBuf = {
        let mut name = path.file_name().unwrap_or_default().to_os_string();
        name.push(".wal");
        path.with_file_name(name)
    };
    if wal_path.is_file() {
        let bytes = std::fs::read(&wal_path)
            .map_err(|e| SdError::SnapshotIo(format!("{}: {e}", wal_path.display())))?;
        match wal::recover(&bytes) {
            Ok(rec) => {
                report.regions_ok += 1;
                report.wal_records = rec.records.len() as u64;
                report.wal_torn_bytes = rec.truncated_bytes;
                if rec.truncated_bytes > 0 {
                    if repair {
                        let file = std::fs::OpenOptions::new()
                            .write(true)
                            .open(&wal_path)
                            .map_err(|e| {
                                SdError::SnapshotIo(format!("{}: {e}", wal_path.display()))
                            })?;
                        file.set_len(rec.valid_len)
                            .and_then(|()| file.sync_all())
                            .map_err(|e| {
                                SdError::SnapshotIo(format!("{}: {e}", wal_path.display()))
                            })?;
                        report.repaired.push(format!(
                            "truncated {} torn byte(s) off {}",
                            rec.truncated_bytes,
                            wal_path.display()
                        ));
                    } else {
                        fail(
                            &mut report,
                            "wal",
                            rec.valid_len,
                            rec.truncated_bytes,
                            format!(
                                "torn tail: {} byte(s) past the last intact record",
                                rec.truncated_bytes
                            ),
                        );
                    }
                }
            }
            Err(e) => {
                // Header or mid-log corruption: replay is impossible and
                // acknowledged writes since the last checkpoint may be in
                // there. Never silently dropped — quarantined, loudly.
                fail(&mut report, "wal", 0, bytes.len() as u64, e.to_string());
                if repair {
                    quarantine(&wal_path, &mut report)?;
                    report.data_loss_possible = true;
                    report.repaired.push(format!(
                        "quarantined unreadable {} (snapshot generation still serves; \
                         post-checkpoint writes may be lost)",
                        wal_path.display()
                    ));
                }
            }
        }
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::{DurableEngine, DurableOptions};
    use crate::io::DiskStorage;
    use sdq_core::Dataset;
    use sdq_engine::SdEngine;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sdq-scrub-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn durable_pair(dir: &Path) -> PathBuf {
        let rows: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let data = Dataset::from_rows(2, &rows).unwrap();
        let engine = SdEngine::build(data, &crate::parse_roles("ar").unwrap()).unwrap();
        let mut d = DurableEngine::create(
            DiskStorage::new(dir).unwrap(),
            "idx.sdq",
            engine,
            DurableOptions::default(),
        )
        .unwrap();
        d.insert(&[1.5, 2.5]).unwrap();
        d.insert(&[0.5, 3.5]).unwrap();
        dir.join("idx.sdq")
    }

    #[test]
    fn clean_pair_scrubs_clean() {
        let dir = temp_dir("clean");
        let snap = durable_pair(&dir);
        let report = scrub_path(&snap, false).unwrap();
        assert!(report.clean(), "{report:?}");
        assert!(report.regions_ok > 1);
        assert_eq!(report.wal_records, 2);
        assert_eq!(report.snapshot_version, Some(crate::FORMAT_V5));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_snapshot_byte_is_found_and_quarantined() {
        let dir = temp_dir("flip");
        let snap = durable_pair(&dir);
        let mut bytes = std::fs::read(&snap).unwrap();
        let n = bytes.len();
        bytes[n - 9] ^= 0x40; // inside the last framed region's payload
        std::fs::write(&snap, &bytes).unwrap();

        let report = scrub_path(&snap, false).unwrap();
        assert!(!report.clean());
        assert!(report.regions_failed >= 1, "{report:?}");
        assert!(snap.is_file(), "read-only scrub must not move files");

        let report = scrub_path(&snap, true).unwrap();
        assert!(!report.quarantined.is_empty(), "{report:?}");
        assert!(report.data_loss_possible);
        assert!(!snap.is_file(), "corrupt snapshot set aside");
        assert!(dir.join("idx.sdq.quarantined").is_file());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_wal_tail_is_reported_then_truncated() {
        let dir = temp_dir("torn");
        let snap = durable_pair(&dir);
        let wal = dir.join("idx.sdq.wal");
        let mut bytes = std::fs::read(&wal).unwrap();
        let intact = bytes.len();
        bytes.extend_from_slice(&[0xAB; 17]);
        std::fs::write(&wal, &bytes).unwrap();

        let report = scrub_path(&snap, false).unwrap();
        assert_eq!(report.wal_torn_bytes, 17);
        assert!(!report.clean());

        let report = scrub_path(&snap, true).unwrap();
        assert_eq!(report.repaired.len(), 1, "{report:?}");
        assert!(!report.data_loss_possible, "torn tail is unacked bytes");
        assert_eq!(std::fs::read(&wal).unwrap().len(), intact);
        // The repaired pair reopens and replays both acked writes.
        let back = DurableEngine::open(
            DiskStorage::new(&dir).unwrap(),
            "idx.sdq",
            DurableOptions::default(),
        )
        .unwrap();
        assert_eq!(back.engine().total_rows(), 34);
        // And a follow-up scrub is clean.
        assert!(scrub_path(&snap, false).unwrap().clean());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn valid_tmp_is_promoted_over_corrupt_snapshot() {
        let dir = temp_dir("promote");
        let snap = durable_pair(&dir);
        // Simulate a checkpoint interrupted between its fsync'd temp write
        // and the rename: copy the (valid, newer-generation) snapshot to
        // NAME.tmp, then corrupt the main file.
        let good = std::fs::read(&snap).unwrap();
        let tmp = dir.join("idx.sdq.tmp");
        std::fs::write(&tmp, &good).unwrap();
        let mut bad = good.clone();
        let n = bad.len();
        bad[n / 2] ^= 0xFF;
        bad[n - 9] ^= 0x40;
        std::fs::write(&snap, &bad).unwrap();

        let report = scrub_path(&snap, true).unwrap();
        assert!(
            report.repaired.iter().any(|r| r.contains("promoted")),
            "{report:?}"
        );
        assert_eq!(std::fs::read(&snap).unwrap(), good);
        assert!(dir.join("idx.sdq.quarantined").is_file());
        assert!(!tmp.is_file());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
