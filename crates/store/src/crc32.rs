//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the snapshot
//! section checksum.
//!
//! Implemented with the slicing-by-8 technique (eight compile-time tables,
//! eight bytes per step), which runs several times faster than the classic
//! one-table loop — snapshots checksum every payload byte on both save and
//! load, so this sits on the persistence hot path.

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut i = 0;
    while i < 256 {
        let mut crc = tables[0][i];
        let mut j = 1;
        while j < 8 {
            crc = (crc >> 8) ^ tables[0][(crc & 0xFF) as usize];
            tables[j][i] = crc;
            j += 1;
        }
        i += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = &TABLES;
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32;

    /// Reference one-table implementation for differential testing.
    fn crc32_reference(bytes: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in bytes {
            crc ^= u32::from(b);
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
        }
        !crc
    }

    #[test]
    fn known_vectors() {
        // Standard CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn matches_reference_on_all_lengths() {
        // Lengths 0..64 cover every remainder-vs-chunks split.
        let data: Vec<u8> = (0..64u8)
            .map(|i| i.wrapping_mul(37).wrapping_add(11))
            .collect();
        for len in 0..=data.len() {
            assert_eq!(
                crc32(&data[..len]),
                crc32_reference(&data[..len]),
                "len {len}"
            );
        }
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"snapshot");
        let mut flipped = *b"snapshot";
        flipped[3] ^= 1;
        assert_ne!(a, crc32(&flipped));
    }
}
