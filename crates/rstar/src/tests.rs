//! Brute-force oracle and invariant tests for the R*-tree.

use super::*;
use rand::{Rng, SeedableRng};

fn rand_flat(rng: &mut impl Rng, n: usize, dims: usize) -> Vec<f64> {
    (0..n * dims).map(|_| rng.gen_range(0.0..1.0)).collect()
}

fn brute_range(flat: &[f64], dims: usize, alive: &[bool], lo: &[f64], hi: &[f64]) -> Vec<u32> {
    (0..alive.len())
        .filter(|&i| {
            alive[i]
                && (0..dims).all(|d| {
                    let v = flat[i * dims + d];
                    lo[d] <= v && v <= hi[d]
                })
        })
        .map(|i| i as u32)
        .collect()
}

#[test]
fn empty_tree() {
    let t = RStarTree::new(3, 8);
    assert!(t.is_empty());
    assert_eq!(t.height(), 0);
    assert!(t.range_query(&[0.0; 3], &[1.0; 3]).is_empty());
    assert!(t.knn(&[0.0; 3], 5).is_empty());
    t.check_invariants();
}

#[test]
fn insert_then_range_matches_bruteforce() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(300);
    for dims in [1, 2, 4] {
        let n = 400;
        let flat = rand_flat(&mut rng, n, dims);
        let mut t = RStarTree::new(dims, 8);
        for i in 0..n {
            t.insert(&flat[i * dims..(i + 1) * dims]);
        }
        t.check_invariants();
        assert_eq!(t.len(), n);
        let alive = vec![true; n];
        for _ in 0..30 {
            let lo: Vec<f64> = (0..dims).map(|_| rng.gen_range(0.0..0.8)).collect();
            let hi: Vec<f64> = lo.iter().map(|&l| l + rng.gen_range(0.0..0.4)).collect();
            let mut got = t.range_query(&lo, &hi);
            got.sort_unstable();
            let want = brute_range(&flat, dims, &alive, &lo, &hi);
            assert_eq!(got, want);
        }
    }
}

#[test]
fn bulk_load_matches_bruteforce() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(301);
    for dims in [2, 3, 6] {
        for n in [1, 5, 37, 1000] {
            let flat = rand_flat(&mut rng, n, dims);
            let t = RStarTree::bulk_load(dims, &flat, 12);
            t.check_invariants();
            assert_eq!(t.len(), n);
            let alive = vec![true; n];
            for _ in 0..15 {
                let lo: Vec<f64> = (0..dims).map(|_| rng.gen_range(0.0..0.8)).collect();
                let hi: Vec<f64> = lo.iter().map(|&l| l + rng.gen_range(0.0..0.5)).collect();
                let mut got = t.range_query(&lo, &hi);
                got.sort_unstable();
                assert_eq!(got, brute_range(&flat, dims, &alive, &lo, &hi));
            }
        }
    }
}

#[test]
fn bulk_load_is_balanced_and_packed() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(302);
    let n = 10_000;
    let flat = rand_flat(&mut rng, n, 2);
    let bulk = RStarTree::bulk_load(2, &flat, 16);
    // STR packs close to full: height must be near log_16(n).
    assert!(
        bulk.height() <= 5,
        "height {} too tall for packed tree",
        bulk.height()
    );
    let mut incremental = RStarTree::new(2, 16);
    for i in 0..n {
        incremental.insert(&flat[i * 2..(i + 1) * 2]);
    }
    assert!(bulk.memory_bytes() <= incremental.memory_bytes());
}

#[test]
fn knn_matches_bruteforce() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(303);
    let dims = 3;
    let n = 500;
    let flat = rand_flat(&mut rng, n, dims);
    let t = RStarTree::bulk_load(dims, &flat, 10);
    for _ in 0..20 {
        let q: Vec<f64> = (0..dims).map(|_| rng.gen_range(0.0..1.0)).collect();
        let k = rng.gen_range(1..20);
        let got = t.knn(&q, k);
        let mut want: Vec<(u32, f64)> = (0..n)
            .map(|i| {
                let d2: f64 = (0..dims).map(|d| (flat[i * dims + d] - q[d]).powi(2)).sum();
                (i as u32, d2)
            })
            .collect();
        want.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        want.truncate(k);
        assert_eq!(got.len(), k);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.1 - w.1).abs() < 1e-12, "knn distance mismatch");
        }
        // Results must be sorted ascending by distance.
        for pair in got.windows(2) {
            assert!(pair[0].1 <= pair[1].1 + 1e-12);
        }
    }
}

#[test]
fn best_first_search_exactness() {
    // Score = -|x - 0.5| summed over dims (maximise closeness to centre);
    // the MBR bound is the per-dim minimum distance.
    let mut rng = rand::rngs::StdRng::seed_from_u64(304);
    let dims = 4;
    let n = 800;
    let flat = rand_flat(&mut rng, n, dims);
    let t = RStarTree::bulk_load(dims, &flat, 9);
    let q = vec![0.5; dims];
    let got = t.search_best_first(
        10,
        |rect| -(0..dims).map(|d| rect.min_dist_dim(d, 0.5)).sum::<f64>(),
        |p| -p.iter().map(|v| (v - 0.5).abs()).sum::<f64>(),
    );
    let mut want: Vec<f64> = (0..n)
        .map(|i| {
            -(0..dims)
                .map(|d| (flat[i * dims + d] - q[d]).abs())
                .sum::<f64>()
        })
        .collect();
    want.sort_by(|a, b| b.partial_cmp(a).unwrap());
    for (g, w) in got.iter().zip(&want) {
        assert!((g.1 - w).abs() < 1e-12);
    }
}

#[test]
fn delete_matches_bruteforce_with_invariants() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(305);
    let dims = 2;
    let n = 300;
    let flat = rand_flat(&mut rng, n, dims);
    let mut t = RStarTree::bulk_load(dims, &flat, 8);
    let mut alive = vec![true; n];
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    for (step, &victim) in order.iter().enumerate() {
        assert!(
            t.delete(victim as u32),
            "delete {victim} failed at step {step}"
        );
        assert!(!t.delete(victim as u32), "double delete must fail");
        alive[victim] = false;
        if step % 25 == 0 {
            t.check_invariants();
            let lo = [0.2, 0.2];
            let hi = [0.7, 0.9];
            let mut got = t.range_query(&lo, &hi);
            got.sort_unstable();
            assert_eq!(got, brute_range(&flat, dims, &alive, &lo, &hi));
        }
    }
    assert!(t.is_empty());
    t.check_invariants();
}

#[test]
fn interleaved_insert_delete() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(306);
    let dims = 3;
    let mut t = RStarTree::new(dims, 6);
    let mut flat: Vec<f64> = Vec::new();
    let mut alive: Vec<bool> = Vec::new();
    for step in 0..600 {
        if step % 3 != 0 || alive.iter().filter(|&&a| a).count() == 0 {
            let p: Vec<f64> = (0..dims).map(|_| rng.gen_range(0.0..1.0)).collect();
            let id = t.insert(&p);
            assert_eq!(id as usize, alive.len());
            flat.extend_from_slice(&p);
            alive.push(true);
        } else {
            let live: Vec<usize> = alive
                .iter()
                .enumerate()
                .filter(|(_, &a)| a)
                .map(|(i, _)| i)
                .collect();
            let victim = live[rng.gen_range(0..live.len())];
            assert!(t.delete(victim as u32));
            alive[victim] = false;
        }
        if step % 50 == 0 {
            t.check_invariants();
        }
    }
    t.check_invariants();
    let lo = vec![0.1; dims];
    let hi = vec![0.6; dims];
    let mut got = t.range_query(&lo, &hi);
    got.sort_unstable();
    assert_eq!(got, brute_range(&flat, dims, &alive, &lo, &hi));
}

#[test]
fn duplicate_points_supported() {
    let mut t = RStarTree::new(2, 4);
    let ids: Vec<u32> = (0..20).map(|_| t.insert(&[0.5, 0.5])).collect();
    t.check_invariants();
    assert_eq!(t.len(), 20);
    assert_eq!(t.range_query(&[0.5, 0.5], &[0.5, 0.5]).len(), 20);
    for id in ids {
        assert!(t.delete(id));
    }
    assert!(t.is_empty());
}

#[test]
fn point_accessor() {
    let mut t = RStarTree::new(2, 4);
    let id = t.insert(&[0.25, 0.75]);
    assert_eq!(t.point(id), Some(&[0.25, 0.75][..]));
    assert_eq!(t.point(99), None);
    t.delete(id);
    assert_eq!(t.point(id), None);
}

#[test]
fn node_capacity_respected_under_stress() {
    // Sequential (sorted) inserts are the classic R-tree worst case;
    // forced reinsertion must keep the structure legal.
    let mut t = RStarTree::new(2, 5);
    for i in 0..500 {
        t.insert(&[i as f64, (i % 7) as f64]);
    }
    t.check_invariants();
    assert_eq!(t.len(), 500);
    let got = t.range_query(&[100.0, 0.0], &[199.0, 7.0]);
    assert_eq!(got.len(), 100);
}

#[test]
fn memory_accounting_positive() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(307);
    let flat = rand_flat(&mut rng, 200, 2);
    let t = RStarTree::bulk_load(2, &flat, 8);
    assert!(t.memory_bytes() > 200 * 2 * 8);
}
