//! Axis-aligned bounding rectangles over a dynamic number of dimensions.

/// An axis-aligned box `[lo, hi]` (inclusive on both ends), the MBR unit of
/// the R*-tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Rect {
    lo: Box<[f64]>,
    hi: Box<[f64]>,
}

impl Rect {
    /// A rect spanning the single point `p`.
    pub fn point(p: &[f64]) -> Self {
        Rect {
            lo: p.into(),
            hi: p.into(),
        }
    }

    /// A rect from explicit bounds; `lo[i] ≤ hi[i]` must hold.
    pub fn new(lo: &[f64], hi: &[f64]) -> Self {
        assert_eq!(lo.len(), hi.len());
        debug_assert!(lo.iter().zip(hi).all(|(a, b)| a <= b), "inverted rect");
        Rect {
            lo: lo.into(),
            hi: hi.into(),
        }
    }

    /// Rebuilds a rect from persisted corners without the ordering debug
    /// assertion (the codec validates shape; the "empty" rect is inverted by
    /// design).
    pub(crate) fn from_parts(lo: Box<[f64]>, hi: Box<[f64]>) -> Self {
        debug_assert_eq!(lo.len(), hi.len());
        Rect { lo, hi }
    }

    /// The "empty" rect that unions as the identity.
    pub fn empty(dims: usize) -> Self {
        Rect {
            lo: vec![f64::INFINITY; dims].into(),
            hi: vec![f64::NEG_INFINITY; dims].into(),
        }
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Grows to cover `other`.
    pub fn union_with(&mut self, other: &Rect) {
        for (a, &b) in self.lo.iter_mut().zip(other.lo.iter()) {
            *a = a.min(b);
        }
        for (a, &b) in self.hi.iter_mut().zip(other.hi.iter()) {
            *a = a.max(b);
        }
    }

    /// Grows to cover the point `p`.
    pub fn extend_point(&mut self, p: &[f64]) {
        for (a, &x) in self.lo.iter_mut().zip(p) {
            *a = a.min(x);
        }
        for (a, &x) in self.hi.iter_mut().zip(p) {
            *a = a.max(x);
        }
    }

    /// Hyper-volume (product of side lengths).
    pub fn area(&self) -> f64 {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(l, h)| (h - l).max(0.0))
            .product()
    }

    /// Half-perimeter (sum of side lengths) — the R* margin measure.
    pub fn margin(&self) -> f64 {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(l, h)| (h - l).max(0.0))
            .sum()
    }

    /// Volume of the intersection with `other`.
    pub fn overlap(&self, other: &Rect) -> f64 {
        let mut v = 1.0;
        for i in 0..self.lo.len() {
            let side = self.hi[i].min(other.hi[i]) - self.lo[i].max(other.lo[i]);
            if side <= 0.0 {
                return 0.0;
            }
            v *= side;
        }
        v
    }

    /// Area increase needed to absorb `other`.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        let mut grown = self.clone();
        grown.union_with(other);
        grown.area() - self.area()
    }

    /// `true` when `p` lies inside (inclusive).
    pub fn contains_point(&self, p: &[f64]) -> bool {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .zip(p)
            .all(|((l, h), x)| l <= x && x <= h)
    }

    /// `true` when `other` lies fully inside (inclusive).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.lo.iter().zip(other.lo.iter()).all(|(a, b)| a <= b)
            && self.hi.iter().zip(other.hi.iter()).all(|(a, b)| a >= b)
    }

    /// `true` when the boxes intersect (inclusive).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.lo.iter().zip(other.hi.iter()).all(|(a, b)| a <= b)
            && self.hi.iter().zip(other.lo.iter()).all(|(a, b)| a >= b)
    }

    /// Centre coordinate along `dim`.
    #[inline]
    pub fn center(&self, dim: usize) -> f64 {
        (self.lo[dim] + self.hi[dim]) / 2.0
    }

    /// Squared Euclidean distance from `p` to the closest rect point
    /// (0 when inside) — the kNN `mindist`.
    pub fn min_dist2(&self, p: &[f64]) -> f64 {
        let mut d2 = 0.0;
        for ((&lo, &hi), &x) in self.lo.iter().zip(self.hi.iter()).zip(p) {
            let d = if x < lo {
                lo - x
            } else if x > hi {
                x - hi
            } else {
                0.0
            };
            d2 += d * d;
        }
        d2
    }

    /// Per-dimension distance from `p[dim]` to the interval (0 when inside).
    #[inline]
    pub fn min_dist_dim(&self, dim: usize, x: f64) -> f64 {
        if x < self.lo[dim] {
            self.lo[dim] - x
        } else if x > self.hi[dim] {
            x - self.hi[dim]
        } else {
            0.0
        }
    }

    /// Per-dimension farthest distance from `p[dim]` to the interval.
    #[inline]
    pub fn max_dist_dim(&self, dim: usize, x: f64) -> f64 {
        (x - self.lo[dim]).abs().max((x - self.hi[dim]).abs())
    }

    /// Squared distance between centres (forced-reinsert ordering).
    pub fn center_dist2(&self, other: &Rect) -> f64 {
        (0..self.lo.len())
            .map(|i| {
                let d = self.center(i) - other.center(i);
                d * d
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_rect_geometry() {
        let r = Rect::point(&[1.0, 2.0]);
        assert_eq!(r.area(), 0.0);
        assert_eq!(r.margin(), 0.0);
        assert!(r.contains_point(&[1.0, 2.0]));
        assert!(!r.contains_point(&[1.0, 2.1]));
    }

    #[test]
    fn union_and_area() {
        let mut r = Rect::point(&[0.0, 0.0]);
        r.extend_point(&[2.0, 3.0]);
        assert_eq!(r.area(), 6.0);
        assert_eq!(r.margin(), 5.0);
        let mut e = Rect::empty(2);
        e.union_with(&r);
        assert_eq!(e, r);
    }

    #[test]
    fn overlap_cases() {
        let a = Rect::new(&[0.0, 0.0], &[2.0, 2.0]);
        let b = Rect::new(&[1.0, 1.0], &[3.0, 3.0]);
        assert_eq!(a.overlap(&b), 1.0);
        let c = Rect::new(&[5.0, 5.0], &[6.0, 6.0]);
        assert_eq!(a.overlap(&c), 0.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        // Touching boxes intersect with zero overlap.
        let d = Rect::new(&[2.0, 0.0], &[3.0, 2.0]);
        assert!(a.intersects(&d));
        assert_eq!(a.overlap(&d), 0.0);
    }

    #[test]
    fn enlargement() {
        let a = Rect::new(&[0.0, 0.0], &[1.0, 1.0]);
        let b = Rect::point(&[2.0, 0.5]);
        assert_eq!(a.enlargement(&b), 1.0);
        assert_eq!(a.enlargement(&Rect::point(&[0.5, 0.5])), 0.0);
    }

    #[test]
    fn containment_and_distance() {
        let a = Rect::new(&[0.0, 0.0], &[4.0, 4.0]);
        assert!(a.contains_rect(&Rect::new(&[1.0, 1.0], &[2.0, 2.0])));
        assert!(!a.contains_rect(&Rect::new(&[1.0, 1.0], &[5.0, 2.0])));
        assert_eq!(a.min_dist2(&[2.0, 2.0]), 0.0);
        assert_eq!(a.min_dist2(&[6.0, 4.0]), 4.0);
        assert_eq!(a.min_dist_dim(0, -3.0), 3.0);
        assert_eq!(a.max_dist_dim(0, -3.0), 7.0);
        assert_eq!(a.max_dist_dim(0, 1.0), 3.0);
    }

    #[test]
    fn empty_rect_identities() {
        let e = Rect::empty(3);
        assert_eq!(e.area(), 0.0);
        assert_eq!(e.margin(), 0.0);
        assert!(!e.contains_point(&[0.0, 0.0, 0.0]));
    }
}
