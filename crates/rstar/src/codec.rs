//! Binary codec for [`RStarTree`], plugging the R*-tree baseline into the
//! `sdq-store` snapshot layer.
//!
//! Mirrors the panic-free decoding contract of `sdq_core::codec`: corrupt
//! bytes surface as [`SdError::SnapshotCorrupt`], never as a panic or an
//! out-of-bounds access during later queries.

use sdq_core::codec::{corrupt, Codec, Reader, Result, Writer};

use crate::rect::Rect;
use crate::{Entry, Node, RStarTree};

fn ensure(cond: bool, detail: impl FnOnce() -> String) -> Result<()> {
    if cond {
        Ok(())
    } else {
        Err(corrupt(detail()))
    }
}

impl Codec for Entry {
    const MIN_ENCODED_BYTES: usize = 5;
    fn encode(&self, w: &mut Writer) {
        match *self {
            Entry::Child(c) => {
                w.u8(0);
                w.u32(c);
            }
            Entry::Point(p) => {
                w.u8(1);
                w.u32(p);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let tag = r.u8()?;
        let v = r.u32()?;
        match tag {
            0 => Ok(Entry::Child(v)),
            1 => Ok(Entry::Point(v)),
            t => Err(corrupt(format!("invalid R*-tree entry tag {t:#04x}"))),
        }
    }
}

impl Codec for Rect {
    const MIN_ENCODED_BYTES: usize = 16;
    fn encode(&self, w: &mut Writer) {
        w.f64s(self.lo());
        w.f64s(self.hi());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let lo = r.f64s()?;
        let hi = r.f64s()?;
        ensure(lo.len() == hi.len(), || {
            format!("rect corner arity mismatch: {} vs {}", lo.len(), hi.len())
        })?;
        for v in lo.iter().chain(&hi) {
            ensure(!v.is_nan(), || "NaN rect corner".to_string())?;
        }
        Ok(Rect::from_parts(lo.into(), hi.into()))
    }
}

impl Codec for Node {
    const MIN_ENCODED_BYTES: usize = 4 + Rect::MIN_ENCODED_BYTES + 8;
    fn encode(&self, w: &mut Writer) {
        w.u32(self.level);
        self.rect.encode(w);
        self.entries.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Node {
            level: r.u32()?,
            rect: Rect::decode(r)?,
            entries: Vec::<Entry>::decode(r)?,
        })
    }
}

impl Codec for RStarTree {
    fn encode(&self, w: &mut Writer) {
        w.usize(self.dims);
        w.usize(self.max_entries);
        w.usize(self.min_entries);
        w.f64s(&self.coords);
        w.bools(&self.alive);
        w.usize(self.n_alive);
        self.nodes.encode(w);
        w.u32s(&self.free);
        self.root.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let dims = r.usize()?;
        let max_entries = r.usize()?;
        let min_entries = r.usize()?;
        let coords = r.f64s()?;
        let alive = r.bools()?;
        let n_alive = r.usize()?;
        let nodes = Vec::<Node>::decode(r)?;
        let free = r.u32s()?;
        let root = Option::<u32>::decode(r)?;

        ensure(dims >= 1, || "R*-tree with 0 dimensions".to_string())?;
        ensure(max_entries >= 4, || {
            format!("max_entries {max_entries} < 4")
        })?;
        ensure(min_entries >= 1 && min_entries <= max_entries, || {
            format!("min_entries {min_entries} outside [1, {max_entries}]")
        })?;
        ensure(Some(coords.len()) == alive.len().checked_mul(dims), || {
            format!(
                "{} coordinates for {} slots × {dims} dims",
                coords.len(),
                alive.len()
            )
        })?;
        ensure(alive.len() <= u32::MAX as usize, || {
            format!("{} slots exceed u32 indexing", alive.len())
        })?;
        for &v in &coords {
            ensure(v.is_finite(), || format!("non-finite coordinate {v}"))?;
        }
        let alive_count = alive.iter().filter(|&&a| a).count();
        ensure(alive_count == n_alive, || {
            format!("n_alive {n_alive} but {alive_count} live slots")
        })?;

        for (i, node) in nodes.iter().enumerate() {
            ensure(node.rect.dims() == dims, || {
                format!("node {i}: rect has {} dims, tree {dims}", node.rect.dims())
            })?;
            for entry in &node.entries {
                match *entry {
                    Entry::Child(c) => {
                        ensure((c as usize) < nodes.len(), || {
                            format!("node {i}: child {c} out of range")
                        })?;
                        ensure(node.level > 0, || {
                            format!("node {i}: leaf holds a child node")
                        })?;
                        ensure(nodes[c as usize].level + 1 == node.level, || {
                            format!("node {i}: child {c} breaks level ordering")
                        })?;
                    }
                    Entry::Point(p) => {
                        ensure((p as usize) < alive.len(), || {
                            format!("node {i}: point slot {p} out of range")
                        })?;
                        ensure(alive[p as usize], || {
                            format!("node {i}: dead point slot {p}")
                        })?;
                        ensure(node.level == 0, || {
                            format!("node {i}: inner node holds a point")
                        })?;
                    }
                }
            }
        }
        let mut freed = vec![false; nodes.len()];
        for &f in &free {
            ensure((f as usize) < nodes.len(), || {
                format!("free-list node {f} out of range")
            })?;
            ensure(!freed[f as usize], || format!("node {f} freed twice"))?;
            freed[f as usize] = true;
        }

        let mut node_seen = vec![false; nodes.len()];
        let mut slot_seen = vec![false; alive.len()];
        if let Some(root) = root {
            ensure((root as usize) < nodes.len(), || {
                format!("root node {root} out of range")
            })?;
            let mut stack = vec![root];
            while let Some(id) = stack.pop() {
                let idx = id as usize;
                ensure(!node_seen[idx], || {
                    format!("node {id} reachable twice (cycle or DAG)")
                })?;
                ensure(!freed[idx], || format!("freed node {id} reachable"))?;
                node_seen[idx] = true;
                for entry in &nodes[idx].entries {
                    match *entry {
                        Entry::Child(c) => stack.push(c),
                        Entry::Point(p) => {
                            ensure(!slot_seen[p as usize], || {
                                format!("point slot {p} appears twice")
                            })?;
                            slot_seen[p as usize] = true;
                        }
                    }
                }
            }
        }
        let reachable = slot_seen.iter().filter(|&&s| s).count();
        ensure(reachable == n_alive, || {
            format!("{reachable} points reachable but {n_alive} live")
        })?;

        Ok(RStarTree {
            dims,
            max_entries,
            min_entries,
            coords,
            alive,
            n_alive,
            nodes,
            free,
            root,
        })
    }
}

#[cfg(test)]
mod tests {
    use sdq_core::codec::{decode_from_slice, encode_to_vec};
    use sdq_core::SdError;

    use crate::RStarTree;

    fn sample_tree() -> RStarTree {
        let flat: Vec<f64> = (0..120).map(|i| ((i * 37) % 101) as f64 * 0.13).collect();
        let mut tree = RStarTree::bulk_load(3, &flat, 6);
        tree.insert(&[0.5, 0.25, 0.75]);
        tree.delete(7);
        tree
    }

    #[test]
    fn rstar_roundtrips_exactly() {
        let tree = sample_tree();
        let bytes = encode_to_vec(&tree);
        let back: RStarTree = decode_from_slice(&bytes).unwrap();
        back.check_invariants();
        let mut got = back.range_query(&[0.0; 3], &[5.0; 3]);
        let mut want = tree.range_query(&[0.0; 3], &[5.0; 3]);
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(back.knn(&[1.0, 1.0, 1.0], 5), tree.knn(&[1.0, 1.0, 1.0], 5));
        assert_eq!(encode_to_vec(&back), bytes);
    }

    #[test]
    fn corrupt_bytes_are_typed_errors_never_panics() {
        let tree = sample_tree();
        let bytes = encode_to_vec(&tree);
        for cut in 0..bytes.len() {
            match decode_from_slice::<RStarTree>(&bytes[..cut]) {
                Ok(_) => {}
                Err(SdError::SnapshotCorrupt { .. }) => {}
                Err(e) => panic!("unexpected error class: {e}"),
            }
        }
        // A flipped byte may still decode (e.g. a perturbed MBR coordinate —
        // semantic corruption is the checksum layer's job), but whatever
        // decodes must answer queries without panicking.
        for pos in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[pos] ^= 0x11;
            if let Ok(t) = decode_from_slice::<RStarTree>(&mutated) {
                let _ = t.range_query(&[0.0; 3], &[5.0; 3]);
                let _ = t.knn(&[1.0, 1.0, 1.0], 3);
            }
        }
    }
}
