//! # sdq-rstar
//!
//! An in-memory R*-tree over multidimensional points — the substrate
//! required by the BRS baseline of the SD-Query paper (§6.1 adapts
//! "Branch-and-bound Processing of Ranked Queries", Tao et al., to main
//! memory over an R*-tree).
//!
//! Implemented from scratch after Beckmann, Kriegel, Schneider & Seeger
//! (SIGMOD 1990):
//!
//! * **ChooseSubtree** — minimum overlap enlargement at the leaf level,
//!   minimum area enlargement above,
//! * **OverflowTreatment** — forced reinsertion of the 30 % of entries
//!   farthest from the node centre, once per level per insertion ("close
//!   reinsert" ordering), then the R* topological split (axis by minimum
//!   margin sum, distribution by minimum overlap),
//! * **CondenseTree deletion** with orphan reinsertion,
//! * **STR bulk loading** (sort-tile-recursive) for fast construction,
//! * **range**, **kNN** and generic **best-first ranked search** — the
//!   latter is the BRS engine: callers supply an upper bound over MBRs and
//!   an exact score for points, and results stream out in certified
//!   descending order.

mod codec;
mod rect;

pub use rect::Rect;

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Total-order wrapper for finite floats (keys/priorities).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Key(f64);

impl Eq for Key {}
impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).unwrap_or(Ordering::Equal)
    }
}

/// An entry of a tree node: a subtree or a data point.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Entry {
    Child(u32),
    Point(u32),
}

#[derive(Debug, Clone)]
struct Node {
    level: u32,
    rect: Rect,
    entries: Vec<Entry>,
}

/// An R*-tree over points with `f64` coordinates.
///
/// Point ids are insertion slots (stable across deletions; slots are
/// tombstoned, never reused).
#[derive(Debug, Clone)]
pub struct RStarTree {
    dims: usize,
    max_entries: usize,
    min_entries: usize,
    coords: Vec<f64>,
    alive: Vec<bool>,
    n_alive: usize,
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: Option<u32>,
}

/// Fraction of entries force-reinserted on first overflow per level.
const REINSERT_FRACTION: f64 = 0.3;

impl RStarTree {
    /// Creates an empty tree. `max_entries ≥ 4`; `min_entries` is 40 % of
    /// the maximum (the R* recommendation).
    pub fn new(dims: usize, max_entries: usize) -> Self {
        assert!(dims >= 1, "dims must be ≥ 1");
        assert!(max_entries >= 4, "max_entries must be ≥ 4");
        RStarTree {
            dims,
            max_entries,
            min_entries: (max_entries * 2 / 5).max(1),
            coords: Vec::new(),
            alive: Vec::new(),
            n_alive: 0,
            nodes: Vec::new(),
            free: Vec::new(),
            root: None,
        }
    }

    /// Bulk loads with sort-tile-recursive packing: `O(n log n)` and much
    /// faster than repeated insertion.
    pub fn bulk_load(dims: usize, flat: &[f64], max_entries: usize) -> Self {
        assert_eq!(
            flat.len() % dims,
            0,
            "flat length must be a multiple of dims"
        );
        let mut tree = Self::new(dims, max_entries);
        tree.coords = flat.to_vec();
        let n = flat.len() / dims;
        tree.alive = vec![true; n];
        tree.n_alive = n;
        if n == 0 {
            return tree;
        }
        // Leaf level.
        let ids: Vec<u32> = (0..n as u32).collect();
        let groups = tree.str_partition(ids, 0, |t, id, d| t.coords_of(id)[d]);
        let groups = tree.fixup_groups(groups);
        let mut level_nodes: Vec<u32> = groups
            .into_iter()
            .map(|g| {
                let entries: Vec<Entry> = g.into_iter().map(Entry::Point).collect();
                tree.alloc(0, entries)
            })
            .collect();
        // Upper levels.
        let mut level = 1u32;
        while level_nodes.len() > 1 {
            let groups = tree.str_partition(level_nodes, 0, |t, id, d| {
                t.nodes[id as usize].rect.center(d)
            });
            let groups = tree.fixup_groups(groups);
            level_nodes = groups
                .into_iter()
                .map(|g| {
                    let entries: Vec<Entry> = g.into_iter().map(Entry::Child).collect();
                    tree.alloc(level, entries)
                })
                .collect();
            level += 1;
        }
        tree.root = Some(level_nodes[0]);
        tree
    }

    /// Repairs STR output so every group (except a lone root group) meets
    /// the minimum fill: underfull groups merge into a neighbour, and a
    /// neighbour pushed past capacity is split evenly (both halves stay
    /// ≥ min because min ≤ 40 % of max).
    fn fixup_groups(&self, mut groups: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
        let (cap, min) = (self.max_entries, self.min_entries);
        let mut i = 0;
        while i < groups.len() {
            if groups[i].len() < min && groups.len() > 1 {
                let donor = if i > 0 { i - 1 } else { i + 1 };
                let moved = groups.remove(i);
                let d = if donor > i { donor - 1 } else { donor };
                groups[d].extend(moved);
                if groups[d].len() > cap {
                    let g = groups.remove(d);
                    let half = g.len() / 2;
                    groups.insert(d, g[half..].to_vec());
                    groups.insert(d, g[..half].to_vec());
                }
            } else {
                i += 1;
            }
        }
        groups
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.n_alive
    }

    /// `true` when no live points remain.
    pub fn is_empty(&self) -> bool {
        self.n_alive == 0
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Height of the tree (0 when empty; 1 for a single leaf).
    pub fn height(&self) -> usize {
        self.root
            .map(|r| self.nodes[r as usize].level as usize + 1)
            .unwrap_or(0)
    }

    /// Coordinates of a live point.
    pub fn point(&self, id: u32) -> Option<&[f64]> {
        let i = id as usize;
        if i < self.alive.len() && self.alive[i] {
            Some(&self.coords[i * self.dims..(i + 1) * self.dims])
        } else {
            None
        }
    }

    #[inline]
    fn coords_of(&self, id: u32) -> &[f64] {
        let i = id as usize * self.dims;
        &self.coords[i..i + self.dims]
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.coords.len() * 8
            + self.alive.len()
            + self
                .nodes
                .iter()
                .map(|n| {
                    std::mem::size_of::<Node>()
                        + n.entries.len() * std::mem::size_of::<Entry>()
                        + n.rect.dims() * 16
                })
                .sum::<usize>()
    }

    // ── insertion ────────────────────────────────────────────────────────

    /// Inserts a point and returns its id.
    pub fn insert(&mut self, point: &[f64]) -> u32 {
        assert_eq!(point.len(), self.dims, "point arity mismatch");
        let id = self.alive.len() as u32;
        self.coords.extend_from_slice(point);
        self.alive.push(true);
        self.n_alive += 1;
        self.insert_entries(vec![(Entry::Point(id), 0)]);
        id
    }

    /// Queue-driven insertion: forced reinsertions append to the queue
    /// instead of recursing, which keeps root growth and parent bookkeeping
    /// simple and correct.
    fn insert_entries(&mut self, mut queue: Vec<(Entry, u32)>) {
        let mut reinserted = vec![false; self.height() + 2];
        while let Some((entry, target_level)) = queue.pop() {
            match self.root {
                None => {
                    debug_assert_eq!(target_level, 0);
                    let root = self.alloc(0, vec![entry]);
                    self.root = Some(root);
                }
                Some(root) => {
                    if self.nodes[root as usize].level < target_level {
                        // Tree shrank below an orphan's level (delete path):
                        // graft by raising the root.
                        let new_root = self.alloc(target_level, vec![Entry::Child(root), entry]);
                        self.root = Some(new_root);
                        continue;
                    }
                    if reinserted.len() < self.height() + 2 {
                        reinserted.resize(self.height() + 2, false);
                    }
                    if let Some(sibling) =
                        self.insert_rec(root, entry, target_level, &mut reinserted, &mut queue)
                    {
                        let level = self.nodes[root as usize].level + 1;
                        let new_root =
                            self.alloc(level, vec![Entry::Child(root), Entry::Child(sibling)]);
                        self.root = Some(new_root);
                    }
                }
            }
        }
    }

    fn entry_rect(&self, entry: Entry) -> Rect {
        match entry {
            Entry::Point(p) => Rect::point(self.coords_of(p)),
            Entry::Child(c) => self.nodes[c as usize].rect.clone(),
        }
    }

    fn insert_rec(
        &mut self,
        node_id: u32,
        entry: Entry,
        target_level: u32,
        reinserted: &mut [bool],
        queue: &mut Vec<(Entry, u32)>,
    ) -> Option<u32> {
        let erect = self.entry_rect(entry);
        let level = self.nodes[node_id as usize].level;
        if level == target_level {
            let node = &mut self.nodes[node_id as usize];
            node.entries.push(entry);
            node.rect.union_with(&erect);
        } else {
            let child = self.choose_subtree(node_id, &erect);
            let split = self.insert_rec(child, entry, target_level, reinserted, queue);
            let child_rect = self.nodes[child as usize].rect.clone();
            {
                let node = &mut self.nodes[node_id as usize];
                node.rect.union_with(&child_rect);
            }
            if let Some(sib) = split {
                let sib_rect = self.nodes[sib as usize].rect.clone();
                let node = &mut self.nodes[node_id as usize];
                node.entries.push(Entry::Child(sib));
                node.rect.union_with(&sib_rect);
            }
        }
        if self.nodes[node_id as usize].entries.len() > self.max_entries {
            return self.overflow(node_id, reinserted, queue);
        }
        None
    }

    /// R* OverflowTreatment: forced reinsert on the first overflow of each
    /// level per insertion, split otherwise.
    fn overflow(
        &mut self,
        node_id: u32,
        reinserted: &mut [bool],
        queue: &mut Vec<(Entry, u32)>,
    ) -> Option<u32> {
        let level = self.nodes[node_id as usize].level as usize;
        if self.root != Some(node_id) && !reinserted[level] {
            reinserted[level] = true;
            self.force_reinsert(node_id, queue);
            None
        } else {
            Some(self.split(node_id))
        }
    }

    /// Removes the 30 % of entries farthest from the node centre and queues
    /// them for reinsertion, closest first ("close reinsert").
    fn force_reinsert(&mut self, node_id: u32, queue: &mut Vec<(Entry, u32)>) {
        let level = self.nodes[node_id as usize].level;
        let node_rect = self.nodes[node_id as usize].rect.clone();
        let mut scored: Vec<(f64, Entry)> = self.nodes[node_id as usize]
            .entries
            .iter()
            .map(|&e| (self.entry_rect(e).center_dist2(&node_rect), e))
            .collect();
        scored.sort_by_key(|e| Reverse(Key(e.0)));
        let p = ((scored.len() as f64 * REINSERT_FRACTION).floor() as usize).max(1);
        // The queue is a stack: push farthest first so the closest pops
        // (and reinserts) first.
        for &(_, e) in scored.iter().take(p) {
            queue.push((e, level));
        }
        let keep: Vec<Entry> = scored.iter().skip(p).map(|&(_, e)| e).collect();
        self.nodes[node_id as usize].entries = keep;
        self.recompute_rect(node_id);
    }

    /// R* ChooseSubtree.
    fn choose_subtree(&self, node_id: u32, erect: &Rect) -> u32 {
        let node = &self.nodes[node_id as usize];
        let children: Vec<u32> = node
            .entries
            .iter()
            .map(|e| match *e {
                Entry::Child(c) => c,
                Entry::Point(_) => unreachable!("points live only at the target level"),
            })
            .collect();
        let leaf_children = node.level == 1;
        let mut best = children[0];
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for &c in &children {
            let crect = &self.nodes[c as usize].rect;
            let mut grown = crect.clone();
            grown.union_with(erect);
            let area_enl = grown.area() - crect.area();
            let key = if leaf_children {
                // Overlap enlargement against the sibling MBRs.
                let mut before = 0.0;
                let mut after = 0.0;
                for &o in &children {
                    if o == c {
                        continue;
                    }
                    let orect = &self.nodes[o as usize].rect;
                    before += crect.overlap(orect);
                    after += grown.overlap(orect);
                }
                (after - before, area_enl, crect.area())
            } else {
                (area_enl, crect.area(), 0.0)
            };
            if key < best_key {
                best_key = key;
                best = c;
            }
        }
        best
    }

    /// R* topological split; returns the new sibling node id.
    fn split(&mut self, node_id: u32) -> u32 {
        let level = self.nodes[node_id as usize].level;
        let entries = std::mem::take(&mut self.nodes[node_id as usize].entries);
        let rects: Vec<Rect> = entries.iter().map(|&e| self.entry_rect(e)).collect();
        let m = self.min_entries;
        let total = entries.len();

        // Axis choice: minimise the margin sum over all distributions of
        // both sorts (by lower and by upper coordinate).
        let mut best_margin = f64::INFINITY;
        let mut best_orders: (Vec<usize>, Vec<usize>) = (Vec::new(), Vec::new());
        for axis in 0..self.dims {
            let mut by_lo: Vec<usize> = (0..total).collect();
            by_lo.sort_by(|&a, &b| {
                Key(rects[a].lo()[axis])
                    .cmp(&Key(rects[b].lo()[axis]))
                    .then(Key(rects[a].hi()[axis]).cmp(&Key(rects[b].hi()[axis])))
            });
            let mut by_hi: Vec<usize> = (0..total).collect();
            by_hi.sort_by(|&a, &b| {
                Key(rects[a].hi()[axis])
                    .cmp(&Key(rects[b].hi()[axis]))
                    .then(Key(rects[a].lo()[axis]).cmp(&Key(rects[b].lo()[axis])))
            });
            let mut margin_sum = 0.0;
            for order in [&by_lo, &by_hi] {
                let (prefix, suffix) = self.sweep_rects(order, &rects);
                for split in m..=(total - m) {
                    margin_sum += prefix[split - 1].margin() + suffix[split].margin();
                }
            }
            if margin_sum < best_margin {
                best_margin = margin_sum;
                best_orders = (by_lo, by_hi);
            }
        }

        // Distribution choice on the winning axis: min overlap, tie min
        // total area.
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        let mut best_split = m;
        let mut best_order: &Vec<usize> = &best_orders.0;
        for order in [&best_orders.0, &best_orders.1] {
            let (prefix, suffix) = self.sweep_rects(order, &rects);
            for split in m..=(total - m) {
                let (r1, r2) = (&prefix[split - 1], &suffix[split]);
                let key = (r1.overlap(r2), r1.area() + r2.area());
                if key < best_key {
                    best_key = key;
                    best_split = split;
                    best_order = order;
                }
            }
        }

        let group1: Vec<Entry> = best_order[..best_split]
            .iter()
            .map(|&i| entries[i])
            .collect();
        let group2: Vec<Entry> = best_order[best_split..]
            .iter()
            .map(|&i| entries[i])
            .collect();
        self.nodes[node_id as usize].entries = group1;
        self.recompute_rect(node_id);
        self.alloc(level, group2)
    }

    /// Prefix/suffix MBR sweeps for split evaluation.
    fn sweep_rects(&self, order: &[usize], rects: &[Rect]) -> (Vec<Rect>, Vec<Rect>) {
        let total = order.len();
        let mut prefix = Vec::with_capacity(total);
        let mut acc = Rect::empty(self.dims);
        for &i in order {
            acc.union_with(&rects[i]);
            prefix.push(acc.clone());
        }
        let mut suffix = vec![Rect::empty(self.dims); total + 1];
        let mut acc = Rect::empty(self.dims);
        for (pos, &i) in order.iter().enumerate().rev() {
            acc.union_with(&rects[i]);
            suffix[pos] = acc.clone();
        }
        (prefix, suffix)
    }

    fn alloc(&mut self, level: u32, entries: Vec<Entry>) -> u32 {
        let rect = self.rect_of_entries(&entries);
        let node = Node {
            level,
            rect,
            entries,
        };
        if let Some(slot) = self.free.pop() {
            self.nodes[slot as usize] = node;
            slot
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn rect_of_entries(&self, entries: &[Entry]) -> Rect {
        let mut rect = Rect::empty(self.dims);
        for &e in entries {
            rect.union_with(&self.entry_rect(e));
        }
        rect
    }

    fn recompute_rect(&mut self, node_id: u32) {
        let entries = std::mem::take(&mut self.nodes[node_id as usize].entries);
        let rect = self.rect_of_entries(&entries);
        let node = &mut self.nodes[node_id as usize];
        node.entries = entries;
        node.rect = rect;
    }

    // ── deletion ─────────────────────────────────────────────────────────

    /// Deletes a point by id; `true` on success. Underflowing nodes are
    /// dissolved and their entries reinserted (CondenseTree).
    pub fn delete(&mut self, id: u32) -> bool {
        let i = id as usize;
        if i >= self.alive.len() || !self.alive[i] {
            return false;
        }
        let Some(root) = self.root else { return false };
        let target = self.coords_of(id).to_vec();
        let mut orphans: Vec<(Entry, u32)> = Vec::new();
        if !self.delete_rec(root, &target, id, &mut orphans) {
            debug_assert!(false, "live point missing from R*-tree");
            return false;
        }
        self.alive[i] = false;
        self.n_alive -= 1;
        // Collapse the root chain before and after orphan reinsertion.
        self.shrink_root();
        if !orphans.is_empty() {
            self.insert_entries(orphans);
        }
        self.shrink_root();
        true
    }

    fn shrink_root(&mut self) {
        while let Some(r) = self.root {
            let node = &self.nodes[r as usize];
            if node.entries.is_empty() {
                self.free.push(r);
                self.root = None;
            } else if node.level > 0 && node.entries.len() == 1 {
                let Entry::Child(c) = node.entries[0] else {
                    unreachable!()
                };
                self.free.push(r);
                self.root = Some(c);
            } else {
                break;
            }
        }
    }

    fn delete_rec(
        &mut self,
        node_id: u32,
        target: &[f64],
        id: u32,
        orphans: &mut Vec<(Entry, u32)>,
    ) -> bool {
        if self.nodes[node_id as usize].level == 0 {
            let pos = self.nodes[node_id as usize]
                .entries
                .iter()
                .position(|&e| e == Entry::Point(id));
            if let Some(pos) = pos {
                self.nodes[node_id as usize].entries.remove(pos);
                self.recompute_rect(node_id);
                return true;
            }
            return false;
        }
        let candidates: Vec<(usize, u32)> = self.nodes[node_id as usize]
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, &e)| match e {
                Entry::Child(c) if self.nodes[c as usize].rect.contains_point(target) => {
                    Some((i, c))
                }
                _ => None,
            })
            .collect();
        for (pos, child) in candidates {
            if self.delete_rec(child, target, id, orphans) {
                if self.nodes[child as usize].entries.len() < self.min_entries {
                    // Dissolve the underflowing child; queue its entries for
                    // reinsertion at their level.
                    let level = self.nodes[child as usize].level;
                    let entries = std::mem::take(&mut self.nodes[child as usize].entries);
                    for e in entries {
                        orphans.push((e, level));
                    }
                    self.nodes[node_id as usize].entries.remove(pos);
                    self.free.push(child);
                }
                self.recompute_rect(node_id);
                return true;
            }
        }
        false
    }

    // ── queries ──────────────────────────────────────────────────────────

    /// Ids of all live points inside `[lo, hi]` (inclusive).
    pub fn range_query(&self, lo: &[f64], hi: &[f64]) -> Vec<u32> {
        let query = Rect::new(lo, hi);
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.range_rec(root, &query, &mut out);
        }
        out
    }

    fn range_rec(&self, node_id: u32, query: &Rect, out: &mut Vec<u32>) {
        let node = &self.nodes[node_id as usize];
        if !node.rect.intersects(query) {
            return;
        }
        for &e in &node.entries {
            match e {
                Entry::Point(p) => {
                    if query.contains_point(self.coords_of(p)) {
                        out.push(p);
                    }
                }
                Entry::Child(c) => self.range_rec(c, query, out),
            }
        }
    }

    /// Generic best-first ranked search — the BRS engine.
    ///
    /// `node_bound` must upper-bound `point_score` over every point inside
    /// the rect. Returns up to `k` highest-scoring points in descending
    /// order; exact as long as the bound is admissible.
    pub fn search_best_first(
        &self,
        k: usize,
        mut node_bound: impl FnMut(&Rect) -> f64,
        mut point_score: impl FnMut(&[f64]) -> f64,
    ) -> Vec<(u32, f64)> {
        let mut out = Vec::with_capacity(k.min(self.n_alive));
        let Some(root) = self.root else { return out };
        let mut heap: BinaryHeap<(Key, Reverse<u32>, bool)> = BinaryHeap::new();
        heap.push((
            Key(node_bound(&self.nodes[root as usize].rect)),
            Reverse(root),
            false,
        ));
        while let Some((Key(score), Reverse(id), is_point)) = heap.pop() {
            if is_point {
                out.push((id, score));
                if out.len() == k {
                    break;
                }
                continue;
            }
            for &e in &self.nodes[id as usize].entries {
                match e {
                    Entry::Point(p) => {
                        heap.push((Key(point_score(self.coords_of(p))), Reverse(p), true));
                    }
                    Entry::Child(c) => {
                        heap.push((
                            Key(node_bound(&self.nodes[c as usize].rect)),
                            Reverse(c),
                            false,
                        ));
                    }
                }
            }
        }
        out
    }

    /// `k` nearest neighbours of `q` by Euclidean distance, closest first,
    /// as `(id, distance²)`.
    pub fn knn(&self, q: &[f64], k: usize) -> Vec<(u32, f64)> {
        let res = self.search_best_first(
            k,
            |rect| -rect.min_dist2(q),
            |p| -p.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum::<f64>(),
        );
        res.into_iter().map(|(id, s)| (id, -s)).collect()
    }

    // ── STR bulk-load partitioning ───────────────────────────────────────

    /// Sort-tile-recursive grouping of `ids` into runs of at most
    /// `max_entries`, recursing over dimensions; `coord` projects an id to
    /// its sort key in a given dimension.
    fn str_partition(
        &self,
        mut ids: Vec<u32>,
        dim: usize,
        coord: impl Fn(&Self, u32, usize) -> f64 + Copy,
    ) -> Vec<Vec<u32>> {
        let cap = self.max_entries;
        if ids.len() <= cap {
            return vec![ids];
        }
        ids.sort_by_key(|&a| Key(coord(self, a, dim)));
        if dim + 1 == self.dims {
            return ids.chunks(cap).map(<[u32]>::to_vec).collect();
        }
        let total_groups = ids.len().div_ceil(cap);
        let slabs = ((total_groups as f64)
            .powf(1.0 / (self.dims - dim) as f64)
            .ceil() as usize)
            .max(1);
        let slab_size = ids.len().div_ceil(slabs);
        ids.chunks(slab_size)
            .flat_map(|slab| self.str_partition(slab.to_vec(), dim + 1, coord))
            .collect()
    }

    // ── invariants ───────────────────────────────────────────────────────

    /// Exhaustively verifies structural invariants (tests / debugging).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut seen = vec![false; self.alive.len()];
        if let Some(root) = self.root {
            assert!(
                !self.nodes[root as usize].entries.is_empty(),
                "non-empty tree must have a non-empty root"
            );
            self.check_node(root, true, &mut seen);
        }
        for (i, &a) in self.alive.iter().enumerate() {
            assert_eq!(a, seen[i], "point {i}: alive={a}, in-tree={}", seen[i]);
        }
    }

    fn check_node(&self, node_id: u32, is_root: bool, seen: &mut [bool]) {
        let node = &self.nodes[node_id as usize];
        if !is_root {
            assert!(
                node.entries.len() >= self.min_entries,
                "underflow: {} < {}",
                node.entries.len(),
                self.min_entries
            );
        }
        assert!(node.entries.len() <= self.max_entries, "overflow");
        let mut rect = Rect::empty(self.dims);
        for &e in &node.entries {
            match e {
                Entry::Point(p) => {
                    assert_eq!(node.level, 0, "points only at leaves");
                    assert!(self.alive[p as usize], "dead point in tree");
                    assert!(!seen[p as usize], "point {p} duplicated");
                    seen[p as usize] = true;
                    rect.extend_point(self.coords_of(p));
                }
                Entry::Child(c) => {
                    assert_eq!(
                        self.nodes[c as usize].level + 1,
                        node.level,
                        "level discontinuity"
                    );
                    self.check_node(c, false, seen);
                    rect.union_with(&self.nodes[c as usize].rect);
                }
            }
        }
        assert!(node.rect.contains_rect(&rect), "MBR not conservative");
    }
}

#[cfg(test)]
mod tests;
