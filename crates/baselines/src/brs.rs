//! The BRS baseline: branch-and-bound ranked search over an R*-tree
//! (Tao, Papadias, Hristidis & Papakonstantinou, Information Systems 2007),
//! adapted to main memory as in §6.1 of the SD-Query paper.
//!
//! BRS explores the tree best-first by an upper bound of the scoring
//! function over each MBR. For the SD-score the bound is closed-form and
//! per-dimension separable:
//!
//! ```text
//! ub(R) = Σ_{i∈D} α_i·maxdist(q_i, R_i) − Σ_{j∈S} β_j·mindist(q_j, R_j)
//! ```
//!
//! The original paper splits space into regions where the function is
//! monotone and runs constrained searches per region; the global bound
//! search explores the same frontier (every constrained search is a
//! best-first walk under the same per-region bound, merged here through
//! one priority queue), which is the simplification noted in `DESIGN.md`.
//!
//! Node capacities follow the paper's tuning: 28 / 16 / 12 / 9 for
//! dimensionalities 2 / 4 / 6 / 8.

use sdq_core::score::{rank_cmp, sd_score};
use sdq_core::{Dataset, DimRole, PointId, ScoredPoint, SdError, SdQuery};
use sdq_rstar::{RStarTree, Rect};

use crate::TopKAlgorithm;

/// The node capacity the paper tuned per dimensionality (§6.1).
pub fn paper_node_capacity(dims: usize) -> usize {
    match dims {
        0..=2 => 28,
        3..=4 => 16,
        5..=6 => 12,
        _ => 9,
    }
}

/// Branch-and-bound ranked search over an R*-tree.
#[derive(Debug, Clone)]
pub struct BrsIndex {
    roles: Vec<DimRole>,
    tree: RStarTree,
}

impl BrsIndex {
    /// Bulk-loads the R*-tree (STR) with the paper's node capacity.
    pub fn build(data: &Dataset, roles: &[DimRole]) -> Result<Self, SdError> {
        Self::build_with_capacity(data, roles, paper_node_capacity(data.dims()))
    }

    /// Bulk-loads with an explicit node capacity.
    pub fn build_with_capacity(
        data: &Dataset,
        roles: &[DimRole],
        capacity: usize,
    ) -> Result<Self, SdError> {
        if roles.len() != data.dims() {
            return Err(SdError::DimensionMismatch {
                expected: data.dims(),
                got: roles.len(),
            });
        }
        let tree = RStarTree::bulk_load(data.dims(), data.flat(), capacity);
        Ok(BrsIndex {
            roles: roles.to_vec(),
            tree,
        })
    }

    /// Creates an empty index for incremental insertion.
    pub fn new(dims: usize, roles: &[DimRole]) -> Result<Self, SdError> {
        if roles.len() != dims {
            return Err(SdError::DimensionMismatch {
                expected: dims,
                got: roles.len(),
            });
        }
        Ok(BrsIndex {
            roles: roles.to_vec(),
            tree: RStarTree::new(dims, paper_node_capacity(dims)),
        })
    }

    /// Number of live points.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// `true` when no live points remain.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Inserts a point (R* insert with forced reinsertion).
    pub fn insert(&mut self, point: &[f64]) -> PointId {
        PointId::new(self.tree.insert(point))
    }

    /// Deletes a point by id.
    pub fn delete(&mut self, id: PointId) -> bool {
        self.tree.delete(id.raw())
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.tree.memory_bytes()
    }

    /// Exact top-k by best-first branch-and-bound.
    pub fn query(&self, query: &SdQuery, k: usize) -> Result<Vec<ScoredPoint>, SdError> {
        if k == 0 {
            return Err(SdError::ZeroK);
        }
        if query.dims() != self.tree.dims() {
            return Err(SdError::DimensionMismatch {
                expected: self.tree.dims(),
                got: query.dims(),
            });
        }
        let roles = &self.roles;
        let (point, weights) = (&query.point, &query.weights);
        let bound = |rect: &Rect| {
            let mut b = 0.0;
            for d in 0..roles.len() {
                b += match roles[d] {
                    DimRole::Repulsive => weights[d] * rect.max_dist_dim(d, point[d]),
                    DimRole::Attractive => -weights[d] * rect.min_dist_dim(d, point[d]),
                };
            }
            b
        };
        let score = |p: &[f64]| sd_score(p, point, roles, weights);
        let mut out: Vec<ScoredPoint> = self
            .tree
            .search_best_first(k, bound, score)
            .into_iter()
            .map(|(id, s)| ScoredPoint::new(PointId::new(id), s))
            .collect();
        out.sort_by(rank_cmp);
        Ok(out)
    }
}

impl TopKAlgorithm for BrsIndex {
    fn name(&self) -> &'static str {
        "BRS"
    }
    fn top_k(&self, query: &SdQuery, k: usize) -> Result<Vec<ScoredPoint>, SdError> {
        self.query(query, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqscan::SeqScan;
    use rand::{Rng, SeedableRng};

    fn assert_equiv(got: &[ScoredPoint], want: &[ScoredPoint]) {
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            assert!(
                (g.score - w.score).abs() < 1e-9,
                "got {got:?}\nwant {want:?}"
            );
        }
    }

    #[test]
    fn matches_oracle() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(500);
        for _ in 0..20 {
            let dims = rng.gen_range(1..8);
            let n = rng.gen_range(1..250);
            let coords: Vec<f64> = (0..n * dims).map(|_| rng.gen_range(0.0..1.0)).collect();
            let data = Dataset::from_flat(dims, coords).unwrap();
            let roles: Vec<DimRole> = (0..dims)
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        DimRole::Repulsive
                    } else {
                        DimRole::Attractive
                    }
                })
                .collect();
            let brs = BrsIndex::build(&data, &roles).unwrap();
            let oracle = SeqScan::new(data, &roles).unwrap();
            for _ in 0..10 {
                let q = SdQuery::new(
                    (0..dims).map(|_| rng.gen_range(-0.2..1.2)).collect(),
                    (0..dims).map(|_| rng.gen_range(0.0..1.0)).collect(),
                )
                .unwrap();
                let k = rng.gen_range(1..10);
                assert_equiv(&brs.query(&q, k).unwrap(), &oracle.query(&q, k).unwrap());
            }
        }
    }

    #[test]
    fn incremental_build_matches_oracle() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(501);
        let dims = 3;
        let roles = vec![DimRole::Repulsive, DimRole::Attractive, DimRole::Repulsive];
        let mut brs = BrsIndex::new(dims, &roles).unwrap();
        let mut rows = Vec::new();
        for _ in 0..300 {
            let row: Vec<f64> = (0..dims).map(|_| rng.gen_range(0.0..1.0)).collect();
            brs.insert(&row);
            rows.push(row);
        }
        let data = Dataset::from_rows(dims, &rows).unwrap();
        let oracle = SeqScan::new(data, &roles).unwrap();
        for _ in 0..15 {
            let q = SdQuery::new(
                (0..dims).map(|_| rng.gen_range(0.0..1.0)).collect(),
                (0..dims).map(|_| rng.gen_range(0.1..1.0)).collect(),
            )
            .unwrap();
            assert_equiv(&brs.query(&q, 5).unwrap(), &oracle.query(&q, 5).unwrap());
        }
    }

    #[test]
    fn delete_keeps_answers_exact() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(502);
        let dims = 2;
        let roles = vec![DimRole::Attractive, DimRole::Repulsive];
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|_| (0..dims).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let data = Dataset::from_rows(dims, &rows).unwrap();
        let mut brs = BrsIndex::build(&data, &roles).unwrap();
        // Delete half the points.
        for i in 0..50u32 {
            assert!(brs.delete(PointId::new(i * 2)));
        }
        let remaining: Vec<Vec<f64>> = rows
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 1)
            .map(|(_, r)| r.clone())
            .collect();
        let oracle = SeqScan::new(Dataset::from_rows(dims, &remaining).unwrap(), &roles).unwrap();
        let q = SdQuery::new(vec![0.4, 0.6], vec![1.0, 1.0]).unwrap();
        let got = brs.query(&q, 5).unwrap();
        let want = oracle.query(&q, 5).unwrap();
        assert_equiv(&got, &want);
    }

    #[test]
    fn paper_capacities() {
        assert_eq!(paper_node_capacity(2), 28);
        assert_eq!(paper_node_capacity(4), 16);
        assert_eq!(paper_node_capacity(6), 12);
        assert_eq!(paper_node_capacity(8), 9);
    }

    #[test]
    fn empty_tree_query() {
        let brs = BrsIndex::new(2, &[DimRole::Attractive, DimRole::Repulsive]).unwrap();
        let q = SdQuery::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        assert!(brs.query(&q, 3).unwrap().is_empty());
    }
}
