//! Sequential scan: the unbeatable-in-simplicity baseline and the oracle
//! every other method is tested against.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use sdq_core::score::{rank_cmp, sd_score};
use sdq_core::{Dataset, DimRole, OrdF64, PointId, ScoredPoint, SdError, SdQuery};

use crate::TopKAlgorithm;

/// Full-scan top-k with an `O(n log k)` bounded heap.
#[derive(Debug, Clone)]
pub struct SeqScan {
    data: Arc<Dataset>,
    roles: Vec<DimRole>,
}

impl SeqScan {
    /// Wraps a dataset; no preprocessing.
    pub fn new(data: impl Into<Arc<Dataset>>, roles: &[DimRole]) -> Result<Self, SdError> {
        let data = data.into();
        if roles.len() != data.dims() {
            return Err(SdError::DimensionMismatch {
                expected: data.dims(),
                got: roles.len(),
            });
        }
        Ok(SeqScan {
            data,
            roles: roles.to_vec(),
        })
    }

    /// The wrapped dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Exact top-k by exhaustive scoring.
    pub fn query(&self, query: &SdQuery, k: usize) -> Result<Vec<ScoredPoint>, SdError> {
        if k == 0 {
            return Err(SdError::ZeroK);
        }
        if query.dims() != self.data.dims() {
            return Err(SdError::DimensionMismatch {
                expected: self.data.dims(),
                got: query.dims(),
            });
        }
        // Min-heap of the current best k: the root is the worst kept entry.
        // Reverse(score) makes the heap pop the lowest score first; ties
        // break towards keeping the *smaller* id, matching `rank_cmp`.
        let mut heap: BinaryHeap<(Reverse<OrdF64>, PointId)> = BinaryHeap::with_capacity(k + 1);
        for (id, coords) in self.data.iter() {
            let s = sd_score(coords, &query.point, &self.roles, &query.weights);
            heap.push((Reverse(OrdF64::new(s)), id));
            if heap.len() > k {
                heap.pop();
            }
        }
        let mut out: Vec<ScoredPoint> = heap
            .into_iter()
            .map(|(Reverse(OrdF64(s)), id)| ScoredPoint::new(id, s))
            .collect();
        out.sort_by(rank_cmp);
        out.truncate(k);
        Ok(out)
    }
}

impl TopKAlgorithm for SeqScan {
    fn name(&self) -> &'static str {
        "SeqScan"
    }
    fn top_k(&self, query: &SdQuery, k: usize) -> Result<Vec<ScoredPoint>, SdError> {
        self.query(query, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        Dataset::from_rows(
            2,
            &[
                vec![0.0, 0.0],
                vec![1.0, 5.0],
                vec![0.5, 2.0],
                vec![3.0, 1.0],
            ],
        )
        .unwrap()
    }

    #[test]
    fn top1_is_global_max() {
        let roles = [DimRole::Attractive, DimRole::Repulsive];
        let scan = SeqScan::new(dataset(), &roles).unwrap();
        let q = SdQuery::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        let r = scan.query(&q, 1).unwrap();
        // p1 = (1, 5): score 5 − 1 = 4 is the max.
        assert_eq!(r[0].id.index(), 1);
        assert_eq!(r[0].score, 4.0);
    }

    #[test]
    fn heap_truncation_matches_full_sort() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
            .collect();
        let data = Dataset::from_rows(2, &rows).unwrap();
        let roles = [DimRole::Repulsive, DimRole::Attractive];
        let scan = SeqScan::new(data.clone(), &roles).unwrap();
        let q = SdQuery::new(vec![0.3, 0.7], vec![0.9, 0.4]).unwrap();
        let got = scan.query(&q, 10).unwrap();
        let mut all: Vec<ScoredPoint> = data
            .iter()
            .map(|(id, c)| ScoredPoint::new(id, sd_score(c, &q.point, &roles, &q.weights)))
            .collect();
        all.sort_by(rank_cmp);
        for (g, w) in got.iter().zip(&all) {
            assert_eq!(g.id, w.id);
            assert_eq!(g.score, w.score);
        }
    }

    #[test]
    fn tie_break_prefers_smaller_id() {
        let data = Dataset::from_rows(1, &[vec![1.0], vec![1.0], vec![1.0]]).unwrap();
        let scan = SeqScan::new(data, &[DimRole::Repulsive]).unwrap();
        let q = SdQuery::new(vec![0.0], vec![1.0]).unwrap();
        let r = scan.query(&q, 2).unwrap();
        assert_eq!(r[0].id.index(), 0);
        assert_eq!(r[1].id.index(), 1);
    }

    #[test]
    fn validation() {
        let scan = SeqScan::new(dataset(), &[DimRole::Attractive, DimRole::Repulsive]).unwrap();
        let q = SdQuery::new(vec![0.0], vec![1.0]).unwrap();
        assert!(scan.query(&q, 1).is_err());
        let q = SdQuery::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        assert!(matches!(scan.query(&q, 0), Err(SdError::ZeroK)));
        assert!(SeqScan::new(dataset(), &[DimRole::Attractive]).is_err());
    }

    #[test]
    fn k_exceeds_n() {
        let roles = [DimRole::Attractive, DimRole::Repulsive];
        let scan = SeqScan::new(dataset(), &roles).unwrap();
        let q = SdQuery::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        assert_eq!(scan.query(&q, 100).unwrap().len(), 4);
    }
}
