//! The adapted Threshold Algorithm baseline (§6.1).
//!
//! "To adapt TA for the proposed class of functions, an ordered list of the
//! data points is maintained for each dimension. Given a query, a binary
//! search is performed to fetch the farthest point on each of the repulsive
//! dimensions and the closest points on the attractive dimensions. The
//! pruning threshold is computed based on the points fetched."
//!
//! Every dimension is a 1-D subproblem — precisely the configuration the
//! §5 aggregation degenerates to with zero pairs, so this reuses the
//! workspace's certified threshold loop with single-dimension streams.

use std::sync::Arc;

use sdq_core::multidim::{threshold_aggregate_with, SortedColumn, Subproblem};
use sdq_core::{Dataset, DimRole, QueryScratch, ScoredPoint, SdError, SdQuery};

use crate::TopKAlgorithm;

/// Per-dimension sorted lists + the TA stopping rule.
#[derive(Debug, Clone)]
pub struct TaIndex {
    data: Arc<Dataset>,
    roles: Vec<DimRole>,
    columns: Vec<SortedColumn>,
}

impl TaIndex {
    /// Sorts every dimension (`O(d·n log n)`).
    pub fn build(data: impl Into<Arc<Dataset>>, roles: &[DimRole]) -> Result<Self, SdError> {
        let data = data.into();
        if roles.len() != data.dims() {
            return Err(SdError::DimensionMismatch {
                expected: data.dims(),
                got: roles.len(),
            });
        }
        let columns = (0..data.dims())
            .map(|d| SortedColumn::new(&data.column(d)))
            .collect();
        Ok(TaIndex {
            data,
            roles: roles.to_vec(),
            columns,
        })
    }

    /// The indexed dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Approximate heap footprint of the sorted lists in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.columns.iter().map(SortedColumn::memory_bytes).sum()
    }

    /// Exact top-k via per-dimension bidirectional streams under the TA
    /// threshold.
    ///
    /// Allocates fresh scratch state per call; steady-state callers should
    /// prefer [`TaIndex::query_with`].
    pub fn query(&self, query: &SdQuery, k: usize) -> Result<Vec<ScoredPoint>, SdError> {
        let mut scratch = QueryScratch::new();
        Ok(self.query_with(query, k, &mut scratch)?.to_vec())
    }

    /// [`TaIndex::query`] with caller-owned scratch buffers, sharing the
    /// same devirtualized [`Subproblem`] streams and aggregation loop as
    /// the §5 index.
    pub fn query_with<'s>(
        &self,
        query: &SdQuery,
        k: usize,
        scratch: &'s mut QueryScratch,
    ) -> Result<&'s [ScoredPoint], SdError> {
        if k == 0 {
            return Err(SdError::ZeroK);
        }
        if query.dims() != self.data.dims() {
            return Err(SdError::DimensionMismatch {
                expected: self.data.dims(),
                got: query.dims(),
            });
        }
        if self.data.is_empty() {
            return Ok(&[]);
        }
        let mut streams = scratch.stream_buf();
        streams.reserve(self.columns.len());
        for (d, col) in self.columns.iter().enumerate() {
            let (q, w) = (query.point[d], query.weights[d]);
            streams.push(match self.roles[d] {
                DimRole::Repulsive => Subproblem::repulsive(col, q, w),
                DimRole::Attractive => Subproblem::attractive(col, q, w),
            });
        }
        threshold_aggregate_with(&self.data, &self.roles, query, k, streams, scratch)
    }
}

impl TopKAlgorithm for TaIndex {
    fn name(&self) -> &'static str {
        "TA"
    }
    fn top_k(&self, query: &SdQuery, k: usize) -> Result<Vec<ScoredPoint>, SdError> {
        self.query(query, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqscan::SeqScan;
    use rand::{Rng, SeedableRng};

    fn assert_equiv(got: &[ScoredPoint], want: &[ScoredPoint]) {
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            assert!(
                (g.score - w.score).abs() < 1e-9,
                "got {got:?}\nwant {want:?}"
            );
        }
    }

    #[test]
    fn matches_oracle() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(400);
        for _ in 0..25 {
            let dims = rng.gen_range(1..7);
            let n = rng.gen_range(1..200);
            let coords: Vec<f64> = (0..n * dims).map(|_| rng.gen_range(0.0..1.0)).collect();
            let data = Dataset::from_flat(dims, coords).unwrap();
            let roles: Vec<DimRole> = (0..dims)
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        DimRole::Repulsive
                    } else {
                        DimRole::Attractive
                    }
                })
                .collect();
            let ta = TaIndex::build(data.clone(), &roles).unwrap();
            let oracle = SeqScan::new(data, &roles).unwrap();
            for _ in 0..10 {
                let q = SdQuery::new(
                    (0..dims).map(|_| rng.gen_range(-0.2..1.2)).collect(),
                    (0..dims).map(|_| rng.gen_range(0.0..1.0)).collect(),
                )
                .unwrap();
                let k = rng.gen_range(1..12);
                assert_equiv(&ta.query(&q, k).unwrap(), &oracle.query(&q, k).unwrap());
            }
        }
    }

    #[test]
    fn empty_dataset() {
        let data = Dataset::from_flat(2, vec![]).unwrap();
        let roles = [DimRole::Repulsive, DimRole::Attractive];
        let ta = TaIndex::build(data, &roles).unwrap();
        let q = SdQuery::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        assert!(ta.query(&q, 3).unwrap().is_empty());
    }

    #[test]
    fn early_termination_happens() {
        // On a large dataset with k = 1, TA must not fetch everything:
        // indirectly verified by the memory of `seen` — here we just check
        // exactness on a skewed dataset where the best point sits at the
        // extreme of one dimension.
        let mut rows: Vec<Vec<f64>> = (0..1000).map(|i| vec![i as f64 / 1000.0, 0.5]).collect();
        rows.push(vec![0.0, 100.0]); // runaway repulsive winner
        let data = Dataset::from_rows(2, &rows).unwrap();
        let roles = [DimRole::Attractive, DimRole::Repulsive];
        let ta = TaIndex::build(data, &roles).unwrap();
        let q = SdQuery::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        let r = ta.query(&q, 1).unwrap();
        assert_eq!(r[0].id.index(), 1000);
        assert_eq!(r[0].score, 100.0);
    }

    #[test]
    fn validation() {
        let data = Dataset::from_flat(2, vec![0.0, 0.0]).unwrap();
        assert!(TaIndex::build(data.clone(), &[DimRole::Repulsive]).is_err());
        let ta = TaIndex::build(data, &[DimRole::Repulsive, DimRole::Attractive]).unwrap();
        let q = SdQuery::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        assert!(matches!(ta.query(&q, 0), Err(SdError::ZeroK)));
    }
}
