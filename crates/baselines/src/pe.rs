//! The PE baseline: Progressive Exploration of the joint space of
//! per-attribute hierarchies (after Xin, Han & Chang, "Progressive and
//! selective merge: computing top-k with ad-hoc ranking functions",
//! SIGMOD 2007), adapted to main memory as in §6.1.
//!
//! Every dimension is indexed by a balanced hierarchy over its sorted value
//! list. A *state* is one interval per dimension — a cell of the joint
//! space — with the admissible score bound
//! `Σ_D α·maxdist(q, I) − Σ_S β·mindist(q, I)`. Exploration is best-first:
//! the top state either splits its loosest dimension in half or, when small
//! enough, materialises its actual points (membership is checked against
//! the cell's value ranges). A point's exact score certifies it once it
//! reaches the top of the result pool above every frontier bound.
//!
//! Joint-space cells multiply with dimensionality, so PE's frontier grows
//! combinatorially — the effect behind the paper's observation that PE
//! performs like a sequential scan at d ≥ 6 (Fig. 7a–c). Past a
//! configurable exploration budget this implementation completes the query
//! by scanning, making the degradation explicit rather than unbounded.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashSet;
use std::sync::Arc;

use sdq_core::score::{rank_cmp, sd_score};
use sdq_core::{Dataset, DimRole, OrdF64, PointId, ScoredPoint, SdError, SdQuery};

use crate::TopKAlgorithm;

/// Cells whose every interval holds at most this many entries materialise
/// instead of splitting.
const LEAF_SIZE: usize = 48;

/// A joint-space cell: one index interval `[lo, hi)` per dimension into the
/// per-dimension sorted lists. (`Ord` exists only to satisfy the heap's
/// bounds; the unique sequence number tie-breaks before it is ever used.)
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct State {
    ranges: Box<[(u32, u32)]>,
}

/// Progressive joint-space exploration index.
#[derive(Debug, Clone)]
pub struct PeIndex {
    data: Arc<Dataset>,
    roles: Vec<DimRole>,
    /// Per dimension: values ascending with their row ids.
    sorted: Vec<Vec<(f64, u32)>>,
    /// Exploration budget in state expansions before degrading to a scan.
    budget: usize,
}

impl PeIndex {
    /// Builds the per-dimension hierarchies (`O(d·n log n)`).
    pub fn build(data: impl Into<Arc<Dataset>>, roles: &[DimRole]) -> Result<Self, SdError> {
        let data = data.into();
        if roles.len() != data.dims() {
            return Err(SdError::DimensionMismatch {
                expected: data.dims(),
                got: roles.len(),
            });
        }
        let mut sorted = Vec::with_capacity(data.dims());
        for d in 0..data.dims() {
            let mut col: Vec<(f64, u32)> = data
                .column(d)
                .into_iter()
                .zip(0..data.len() as u32)
                .collect();
            col.sort_by(|a, b| OrdF64(a.0).cmp(&OrdF64(b.0)).then(a.1.cmp(&b.1)));
            sorted.push(col);
        }
        let budget = 8 * data.len() + 1024;
        Ok(PeIndex {
            data,
            roles: roles.to_vec(),
            sorted,
            budget,
        })
    }

    /// Overrides the exploration budget (state expansions before the
    /// sequential-scan fallback).
    pub fn set_budget(&mut self, budget: usize) {
        self.budget = budget;
    }

    /// The indexed dataset.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.sorted
            .iter()
            .map(|c| c.len() * std::mem::size_of::<(f64, u32)>())
            .sum()
    }

    /// Inserts a point into every per-dimension list (`O(d·n)` memmove —
    /// the linear growth visible in the paper's Fig. 8b).
    pub fn insert(&mut self, point: &[f64]) -> Result<PointId, SdError> {
        if point.len() != self.data.dims() {
            return Err(SdError::DimensionMismatch {
                expected: self.data.dims(),
                got: point.len(),
            });
        }
        // The dataset is shared; clone-on-write to extend it.
        let data = Arc::make_mut(&mut self.data);
        let row = data.push_row(point)?.raw();
        for (d, col) in self.sorted.iter_mut().enumerate() {
            let key = (point[d], row);
            let pos = col.partition_point(|&(v, id)| {
                OrdF64(v).cmp(&OrdF64(key.0)).then(id.cmp(&key.1)) == std::cmp::Ordering::Less
            });
            col.insert(pos, key);
        }
        Ok(PointId::new(row))
    }

    /// Score bound of a cell.
    fn state_bound(&self, q: &SdQuery, s: &State) -> f64 {
        let mut b = 0.0;
        for d in 0..self.roles.len() {
            let (lo, hi) = s.ranges[d];
            let vlo = self.sorted[d][lo as usize].0;
            let vhi = self.sorted[d][hi as usize - 1].0;
            let (qv, w) = (q.point[d], q.weights[d]);
            b += match self.roles[d] {
                DimRole::Repulsive => w * (qv - vlo).abs().max((qv - vhi).abs()),
                DimRole::Attractive => {
                    let dist = if qv < vlo {
                        vlo - qv
                    } else if qv > vhi {
                        qv - vhi
                    } else {
                        0.0
                    };
                    -w * dist
                }
            };
        }
        b
    }

    /// Exact top-k by progressive exploration.
    pub fn query(&self, query: &SdQuery, k: usize) -> Result<Vec<ScoredPoint>, SdError> {
        if k == 0 {
            return Err(SdError::ZeroK);
        }
        if query.dims() != self.data.dims() {
            return Err(SdError::DimensionMismatch {
                expected: self.data.dims(),
                got: query.dims(),
            });
        }
        let n = self.data.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let dims = self.data.dims();
        let k_eff = k.min(n);

        let mut frontier: BinaryHeap<(OrdF64, Reverse<u64>, State)> = BinaryHeap::new();
        let mut state_seq = 0u64;
        let root = State {
            ranges: vec![(0u32, n as u32); dims].into_boxed_slice(),
        };
        frontier.push((
            OrdF64::new(self.state_bound(query, &root)),
            Reverse(state_seq),
            root,
        ));

        let mut pool: BinaryHeap<(OrdF64, Reverse<u32>)> = BinaryHeap::new();
        let mut seen: HashSet<u32> = HashSet::new();
        let mut answers: Vec<ScoredPoint> = Vec::with_capacity(k_eff);
        let mut expansions = 0usize;

        loop {
            let frontier_bound = frontier.peek().map(|&(OrdF64(b), _, _)| b);
            // Certified emissions.
            while answers.len() < k_eff {
                match pool.peek() {
                    Some(&(OrdF64(s), Reverse(row))) if frontier_bound.is_none_or(|b| s >= b) => {
                        pool.pop();
                        answers.push(ScoredPoint::new(PointId::new(row), s));
                    }
                    _ => break,
                }
            }
            if answers.len() >= k_eff {
                break;
            }
            let Some((_, _, state)) = frontier.pop() else {
                // Frontier exhausted: drain the pool.
                while answers.len() < k_eff {
                    match pool.pop() {
                        Some((OrdF64(s), Reverse(row))) => {
                            answers.push(ScoredPoint::new(PointId::new(row), s))
                        }
                        None => break,
                    }
                }
                break;
            };
            expansions += 1;
            if expansions > self.budget {
                // Budget exceeded: finish by scanning everything unseen
                // (the sequential-scan degradation of Fig. 7a–c).
                for (id, coords) in self.data.iter() {
                    if seen.insert(id.raw()) {
                        let s = sd_score(coords, &query.point, &self.roles, &query.weights);
                        pool.push((OrdF64::new(s), Reverse(id.raw())));
                    }
                }
                frontier.clear();
                continue;
            }

            let widest = (0..dims)
                .max_by_key(|&d| state.ranges[d].1 - state.ranges[d].0)
                .expect("dims ≥ 1");
            let width = (state.ranges[widest].1 - state.ranges[widest].0) as usize;
            if width <= LEAF_SIZE {
                // Materialise: enumerate the smallest interval, check cell
                // membership against every dimension's value range.
                let narrowest = (0..dims)
                    .min_by_key(|&d| state.ranges[d].1 - state.ranges[d].0)
                    .expect("dims ≥ 1");
                let (lo, hi) = state.ranges[narrowest];
                'cand: for i in lo..hi {
                    let (_, row) = self.sorted[narrowest][i as usize];
                    let coords = self.data.point(PointId::new(row));
                    for (d, &c) in coords.iter().enumerate() {
                        let (dlo, dhi) = state.ranges[d];
                        let vlo = self.sorted[d][dlo as usize].0;
                        let vhi = self.sorted[d][dhi as usize - 1].0;
                        if c < vlo || c > vhi {
                            continue 'cand;
                        }
                    }
                    if seen.insert(row) {
                        let s = sd_score(coords, &query.point, &self.roles, &query.weights);
                        pool.push((OrdF64::new(s), Reverse(row)));
                    }
                }
            } else {
                // Split the widest dimension in half.
                let (lo, hi) = state.ranges[widest];
                let mid = lo + (hi - lo) / 2;
                for (a, b) in [(lo, mid), (mid, hi)] {
                    let mut ranges = state.ranges.clone();
                    ranges[widest] = (a, b);
                    let child = State { ranges };
                    state_seq += 1;
                    frontier.push((
                        OrdF64::new(self.state_bound(query, &child)),
                        Reverse(state_seq),
                        child,
                    ));
                }
            }
        }
        answers.sort_by(rank_cmp);
        Ok(answers)
    }
}

impl TopKAlgorithm for PeIndex {
    fn name(&self) -> &'static str {
        "PE"
    }
    fn top_k(&self, query: &SdQuery, k: usize) -> Result<Vec<ScoredPoint>, SdError> {
        self.query(query, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqscan::SeqScan;
    use rand::{Rng, SeedableRng};

    fn assert_equiv(got: &[ScoredPoint], want: &[ScoredPoint]) {
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            assert!(
                (g.score - w.score).abs() < 1e-9,
                "got {got:?}\nwant {want:?}"
            );
        }
    }

    #[test]
    fn matches_oracle() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(600);
        for _ in 0..20 {
            let dims = rng.gen_range(1..6);
            let n = rng.gen_range(1..200);
            let coords: Vec<f64> = (0..n * dims).map(|_| rng.gen_range(0.0..1.0)).collect();
            let data = Dataset::from_flat(dims, coords).unwrap();
            let roles: Vec<DimRole> = (0..dims)
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        DimRole::Repulsive
                    } else {
                        DimRole::Attractive
                    }
                })
                .collect();
            let pe = PeIndex::build(data.clone(), &roles).unwrap();
            let oracle = SeqScan::new(data, &roles).unwrap();
            for _ in 0..8 {
                let q = SdQuery::new(
                    (0..dims).map(|_| rng.gen_range(-0.2..1.2)).collect(),
                    (0..dims).map(|_| rng.gen_range(0.0..1.0)).collect(),
                )
                .unwrap();
                let k = rng.gen_range(1..10);
                assert_equiv(&pe.query(&q, k).unwrap(), &oracle.query(&q, k).unwrap());
            }
        }
    }

    #[test]
    fn tiny_budget_still_exact_via_scan_fallback() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(601);
        let dims = 4;
        let n = 300;
        let coords: Vec<f64> = (0..n * dims).map(|_| rng.gen_range(0.0..1.0)).collect();
        let data = Dataset::from_flat(dims, coords).unwrap();
        let roles = vec![
            DimRole::Repulsive,
            DimRole::Attractive,
            DimRole::Repulsive,
            DimRole::Attractive,
        ];
        let mut pe = PeIndex::build(data.clone(), &roles).unwrap();
        pe.set_budget(3); // force the degradation path
        let oracle = SeqScan::new(data, &roles).unwrap();
        for _ in 0..10 {
            let q = SdQuery::new(
                (0..dims).map(|_| rng.gen_range(0.0..1.0)).collect(),
                (0..dims).map(|_| rng.gen_range(0.1..1.0)).collect(),
            )
            .unwrap();
            assert_equiv(&pe.query(&q, 5).unwrap(), &oracle.query(&q, 5).unwrap());
        }
    }

    #[test]
    fn insert_extends_all_lists() {
        let data = Dataset::from_rows(2, &[vec![0.1, 0.9], vec![0.5, 0.5]]).unwrap();
        let roles = vec![DimRole::Attractive, DimRole::Repulsive];
        let mut pe = PeIndex::build(data, &roles).unwrap();
        let id = pe.insert(&[0.3, 0.7]).unwrap();
        assert_eq!(id.index(), 2);
        assert_eq!(pe.data().len(), 3);
        let q = SdQuery::new(vec![0.3, 0.0], vec![1.0, 1.0]).unwrap();
        let oracle = SeqScan::new(pe.data().clone(), &roles).unwrap();
        assert_equiv(&pe.query(&q, 3).unwrap(), &oracle.query(&q, 3).unwrap());
    }

    #[test]
    fn duplicates_and_degenerate_columns() {
        // All points identical: every cell collapses to one value.
        let data = Dataset::from_rows(3, &vec![vec![0.5; 3]; 20]).unwrap();
        let roles = vec![DimRole::Repulsive, DimRole::Attractive, DimRole::Repulsive];
        let pe = PeIndex::build(data.clone(), &roles).unwrap();
        let q = SdQuery::new(vec![0.0; 3], vec![1.0; 3]).unwrap();
        let got = pe.query(&q, 5).unwrap();
        assert_eq!(got.len(), 5);
        for g in &got {
            assert!((g.score - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_dataset() {
        let data = Dataset::from_flat(2, vec![]).unwrap();
        let roles = vec![DimRole::Attractive, DimRole::Repulsive];
        let pe = PeIndex::build(data, &roles).unwrap();
        let q = SdQuery::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        assert!(pe.query(&q, 4).unwrap().is_empty());
    }
}
