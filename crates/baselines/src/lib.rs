//! # sdq-baselines
//!
//! The four comparison methods of the SD-Query evaluation (§6.1), each
//! answering the same non-monotonic top-k query exactly:
//!
//! * [`seqscan`] — sequential scan with a bounded result heap (also the
//!   test oracle for the whole workspace),
//! * [`ta`] — the adapted Threshold Algorithm \[Fagin et al., PODS'01\]:
//!   one sorted list per dimension, bidirectional pointers (farthest-first
//!   on repulsive dimensions, nearest-first on attractive ones) and the TA
//!   stopping rule,
//! * [`brs`] — Branch-and-Bound Processing of Ranked Queries \[Tao et al.,
//!   Inf. Syst. 2007\] over an in-memory R*-tree with closed-form MBR score
//!   bounds,
//! * [`pe`] — Progressive Exploration \[Xin, Han & Chang, SIGMOD'07\]:
//!   best-first exploration of the joint space of per-dimension
//!   hierarchies, degrading to a scan past its exploration budget (the
//!   behaviour the paper reports at d ≥ 6).
//!
//! All methods share the [`TopKAlgorithm`] trait so the benchmark harness
//! can drive them interchangeably.

pub mod brs;
pub mod pe;
pub mod seqscan;
pub mod ta;

pub use brs::BrsIndex;
pub use pe::PeIndex;
pub use seqscan::SeqScan;
pub use ta::TaIndex;

use sdq_core::{ScoredPoint, SdError, SdQuery};

/// A uniform facade over every top-k method in the workspace, used by the
/// experiment harness.
pub trait TopKAlgorithm {
    /// Short method name, as used in the paper's plots.
    fn name(&self) -> &'static str;
    /// Exact top-k under the method's build-time roles.
    fn top_k(&self, query: &SdQuery, k: usize) -> Result<Vec<ScoredPoint>, SdError>;
}

impl TopKAlgorithm for sdq_core::multidim::SdIndex {
    fn name(&self) -> &'static str {
        "SD-Index"
    }
    fn top_k(&self, query: &SdQuery, k: usize) -> Result<Vec<ScoredPoint>, SdError> {
        self.query(query, k)
    }
}
