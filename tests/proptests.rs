//! Property-based tests (proptest): oracle equivalence and structural
//! invariants under arbitrary finite inputs — not just the nice uniform
//! clouds of the example workloads.

use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;

use sdq::baselines::{BrsIndex, PeIndex, SeqScan, TaIndex};
use sdq::core::multidim::SdIndex;
use sdq::core::top1::Top1Index;
use sdq::core::topk::TopKIndex;
use sdq::rstar::RStarTree;
use sdq::{Dataset, DimRole, PointId, ScoredPoint, SdQuery};

fn coord() -> impl Strategy<Value = f64> {
    // Mix of magnitudes, exact duplicates and negatives.
    prop_oneof![
        4 => -100.0..100.0f64,
        1 => Just(0.0),
        1 => Just(1.0),
        1 => Just(-1.0),
        1 => -1e6..1e6f64,
    ]
}

fn weight() -> impl Strategy<Value = f64> {
    prop_oneof![4 => 0.0..10.0f64, 1 => Just(0.0), 1 => Just(1.0)]
}

fn check_equiv(got: &[ScoredPoint], want: &[ScoredPoint]) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want) {
        let scale = 1.0 + g.score.abs().max(w.score.abs());
        prop_assert!(
            (g.score - w.score).abs() < 1e-7 * scale,
            "scores diverge: {:?} vs {:?}",
            got,
            want
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn top1_index_equals_oracle(
        pts in vec((coord(), coord()), 1..60),
        queries in vec((coord(), coord()), 1..8),
        alpha in weight(),
        beta in weight(),
        k in 1usize..6,
    ) {
        prop_assume!(alpha > 0.0 || beta > 0.0);
        let index = Top1Index::build(&pts, alpha, beta, k).unwrap();
        for (qx, qy) in queries {
            let mut want: Vec<ScoredPoint> = pts.iter().enumerate().map(|(i, &(x, y))| {
                ScoredPoint::new(
                    PointId::new(i as u32),
                    alpha * (y - qy).abs() - beta * (x - qx).abs(),
                )
            }).collect();
            want.sort_by(sdq::core::score::rank_cmp);
            want.truncate(k);
            check_equiv(&index.query(qx, qy), &want)?;
        }
    }

    #[test]
    fn topk_index_equals_oracle(
        pts in vec((coord(), coord()), 1..60),
        qx in coord(), qy in coord(),
        alpha in weight(), beta in weight(),
        k in 1usize..8,
    ) {
        prop_assume!(alpha > 0.0 || beta > 0.0);
        let index = TopKIndex::build(&pts).unwrap();
        let got = index.query(qx, qy, alpha, beta, k).unwrap();
        let mut want: Vec<ScoredPoint> = pts.iter().enumerate().map(|(i, &(x, y))| {
            ScoredPoint::new(
                PointId::new(i as u32),
                alpha * (y - qy).abs() - beta * (x - qx).abs(),
            )
        }).collect();
        want.sort_by(sdq::core::score::rank_cmp);
        want.truncate(k);
        check_equiv(&got, &want)?;
    }

    #[test]
    fn multidim_and_baselines_equal_oracle(
        rows in vec(vec(coord(), 3), 1..50),
        q in vec(coord(), 3),
        w in vec(weight(), 3),
        rep_mask in 0usize..8,
        k in 1usize..6,
    ) {
        let roles: Vec<DimRole> = (0..3).map(|d| {
            if rep_mask & (1 << d) != 0 { DimRole::Repulsive } else { DimRole::Attractive }
        }).collect();
        let data = Arc::new(Dataset::from_rows(3, &rows).unwrap());
        let query = SdQuery::new(q, w).unwrap();
        let oracle = SeqScan::new(data.clone(), &roles).unwrap();
        let want = oracle.query(&query, k).unwrap();
        check_equiv(&SdIndex::build(data.clone(), &roles).unwrap().query(&query, k).unwrap(), &want)?;
        check_equiv(&TaIndex::build(data.clone(), &roles).unwrap().query(&query, k).unwrap(), &want)?;
        check_equiv(&BrsIndex::build(&data, &roles).unwrap().query(&query, k).unwrap(), &want)?;
        check_equiv(&PeIndex::build(data.clone(), &roles).unwrap().query(&query, k).unwrap(), &want)?;
    }

    #[test]
    fn top1_updates_equal_rebuild(
        initial in vec((coord(), coord()), 1..25),
        inserts in vec((coord(), coord()), 0..15),
        delete_seed in 0u64..1000,
        qx in coord(), qy in coord(),
    ) {
        let mut index = Top1Index::build(&initial, 1.0, 1.0, 1).unwrap();
        let mut shadow: Vec<(f64, f64)> = initial.clone();
        let mut alive: Vec<bool> = vec![true; shadow.len()];
        for (i, &(x, y)) in inserts.iter().enumerate() {
            index.insert(x, y).unwrap();
            shadow.push((x, y));
            alive.push(true);
            // Deterministic pseudo-random interleaved delete.
            if (delete_seed + i as u64).is_multiple_of(3) {
                let victim = ((delete_seed as usize + i * 7) % shadow.len()) as u32;
                if alive[victim as usize] && alive.iter().filter(|&&a| a).count() > 1 {
                    index.delete(PointId::new(victim));
                    alive[victim as usize] = false;
                }
            }
        }
        let mut want: Vec<ScoredPoint> = shadow.iter().enumerate()
            .filter(|(i, _)| alive[*i])
            .map(|(i, &(x, y))| ScoredPoint::new(
                PointId::new(i as u32),
                (y - qy).abs() - (x - qx).abs(),
            )).collect();
        want.sort_by(sdq::core::score::rank_cmp);
        want.truncate(1);
        check_equiv(&index.query(qx, qy), &want)?;
    }

    #[test]
    fn rstar_range_equals_bruteforce(
        pts in vec(vec(coord(), 3), 0..80),
        lo in vec(coord(), 3),
        extent in vec(0.0..200.0f64, 3),
    ) {
        let flat: Vec<f64> = pts.iter().flatten().copied().collect();
        let tree = RStarTree::bulk_load(3, &flat, 6);
        tree.check_invariants();
        let hi: Vec<f64> = lo.iter().zip(&extent).map(|(l, e)| l + e).collect();
        let mut got = tree.range_query(&lo, &hi);
        got.sort_unstable();
        let want: Vec<u32> = pts.iter().enumerate().filter(|(_, p)| {
            p.iter().zip(&lo).zip(&hi).all(|((v, l), h)| l <= v && v <= h)
        }).map(|(i, _)| i as u32).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn envelope_is_pointwise_max(
        pts in vec((coord(), coord()), 1..40),
        alpha in 0.01f64..10.0,
        beta in weight(),
        probes in vec(coord(), 1..12),
    ) {
        use sdq::core::envelope::{provider_at, upper_envelope, Tent};
        use sdq::core::geometry::Angle;
        let angle = Angle::from_weights(alpha, beta).unwrap();
        let tents: Vec<Tent> = pts.iter().map(|&(x, y)| Tent::new(x, y)).collect();
        let regions = upper_envelope(&angle, &tents, None);
        for ax in probes {
            let p = provider_at(&regions, ax) as usize;
            let got = angle.lower_at(tents[p].x, tents[p].y, ax);
            let want = tents.iter()
                .map(|t| angle.lower_at(t.x, t.y, ax))
                .fold(f64::NEG_INFINITY, f64::max);
            let scale = 1.0 + want.abs();
            prop_assert!((got - want).abs() < 1e-9 * scale);
        }
    }
}
