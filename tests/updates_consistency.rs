//! Long randomized update workloads: interleaved inserts/deletes on every
//! updatable structure, continuously cross-checked against a shadow oracle
//! and structural invariant checks.

use rand::{Rng, SeedableRng};
use sdq::baselines::BrsIndex;
use sdq::core::score::rank_cmp;
use sdq::core::top1::Top1Index;
use sdq::core::topk::TopKIndex;
use sdq::rstar::RStarTree;
use sdq::{DimRole, PointId, ScoredPoint, SdQuery};

struct Shadow {
    pts: Vec<(f64, f64)>,
    alive: Vec<bool>,
}

impl Shadow {
    fn new() -> Self {
        Shadow {
            pts: Vec::new(),
            alive: Vec::new(),
        }
    }
    fn insert(&mut self, p: (f64, f64)) -> u32 {
        self.pts.push(p);
        self.alive.push(true);
        (self.pts.len() - 1) as u32
    }
    fn live(&self) -> Vec<u32> {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| i as u32)
            .collect()
    }
    fn top_k(&self, qx: f64, qy: f64, alpha: f64, beta: f64, k: usize) -> Vec<ScoredPoint> {
        let mut all: Vec<ScoredPoint> = self
            .pts
            .iter()
            .enumerate()
            .filter(|(i, _)| self.alive[*i])
            .map(|(i, &(x, y))| {
                ScoredPoint::new(
                    PointId::new(i as u32),
                    alpha * (y - qy).abs() - beta * (x - qx).abs(),
                )
            })
            .collect();
        all.sort_by(rank_cmp);
        all.truncate(k);
        all
    }
}

fn assert_equiv(got: &[ScoredPoint], want: &[ScoredPoint]) {
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want) {
        assert!(
            (g.score - w.score).abs() < 1e-9,
            "got {got:?}\nwant {want:?}"
        );
    }
}

#[test]
fn topk_index_survives_2000_updates() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xF1);
    let mut index = TopKIndex::build(&[]).unwrap();
    index.set_rebuild_threshold(0.15);
    let mut shadow = Shadow::new();
    for step in 0..2000 {
        let roll: f64 = rng.gen();
        let live = shadow.live();
        if roll < 0.6 || live.len() < 2 {
            let p = (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
            let id = index.insert(p.0, p.1).unwrap();
            assert_eq!(id.raw(), shadow.insert(p));
        } else {
            let victim = live[rng.gen_range(0..live.len())];
            assert!(index.delete(PointId::new(victim)));
            shadow.alive[victim as usize] = false;
        }
        if step % 100 == 0 {
            index.check_invariants();
        }
        if step % 10 == 0 && !shadow.live().is_empty() {
            let (qx, qy) = (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
            let (alpha, beta): (f64, f64) = (rng.gen_range(0.01..1.0), rng.gen_range(0.0..1.0));
            let got = index.query(qx, qy, alpha, beta, 5).unwrap();
            assert_equiv(&got, &shadow.top_k(qx, qy, alpha, beta, 5));
        }
    }
}

#[test]
fn top1_index_survives_1000_updates() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xF2);
    let mut index = Top1Index::new(0.9, 0.4, 1).unwrap();
    let mut shadow = Shadow::new();
    for step in 0..1000 {
        let roll: f64 = rng.gen();
        let live = shadow.live();
        if roll < 0.55 || live.len() < 2 {
            let p = (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
            index.insert(p.0, p.1).unwrap();
            shadow.insert(p);
        } else {
            let victim = live[rng.gen_range(0..live.len())];
            assert!(index.delete(PointId::new(victim)));
            shadow.alive[victim as usize] = false;
        }
        if step % 5 == 0 && !shadow.live().is_empty() {
            let (qx, qy) = (rng.gen_range(-0.5..1.5), rng.gen_range(-0.5..1.5));
            assert_equiv(&index.query(qx, qy), &shadow.top_k(qx, qy, 0.9, 0.4, 1));
        }
    }
}

#[test]
fn brs_survives_1000_updates() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xF3);
    let roles = [DimRole::Attractive, DimRole::Repulsive];
    let mut index = BrsIndex::new(2, &roles).unwrap();
    let mut shadow = Shadow::new();
    for step in 0..1000 {
        let roll: f64 = rng.gen();
        let live = shadow.live();
        if roll < 0.6 || live.len() < 2 {
            let p = (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
            index.insert(&[p.0, p.1]);
            shadow.insert(p);
        } else {
            let victim = live[rng.gen_range(0..live.len())];
            assert!(index.delete(PointId::new(victim)));
            shadow.alive[victim as usize] = false;
        }
        if step % 20 == 0 && !shadow.live().is_empty() {
            let q = SdQuery::new(
                vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)],
                vec![0.7, 1.0],
            )
            .unwrap();
            let got = index.query(&q, 3).unwrap();
            // Shadow uses (x-attractive β = 0.7, y-repulsive α = 1.0).
            assert_equiv(&got, &shadow.top_k(q.point[0], q.point[1], 1.0, 0.7, 3));
        }
    }
}

#[test]
fn rstar_survives_3000_updates_with_invariants() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xF4);
    let mut tree = RStarTree::new(3, 5);
    let mut alive: Vec<bool> = Vec::new();
    let mut coords: Vec<[f64; 3]> = Vec::new();
    for step in 0..3000 {
        let live: Vec<u32> = alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| i as u32)
            .collect();
        if rng.gen_bool(0.6) || live.len() < 2 {
            let p = [rng.gen(), rng.gen(), rng.gen()];
            tree.insert(&p);
            coords.push(p);
            alive.push(true);
        } else {
            let victim = live[rng.gen_range(0..live.len())];
            assert!(tree.delete(victim));
            alive[victim as usize] = false;
        }
        if step % 250 == 0 {
            tree.check_invariants();
        }
    }
    tree.check_invariants();
    // Final exhaustive range check.
    let lo = [0.25, 0.0, 0.4];
    let hi = [0.8, 0.9, 0.95];
    let mut got = tree.range_query(&lo, &hi);
    got.sort_unstable();
    let want: Vec<u32> = coords
        .iter()
        .enumerate()
        .filter(|(i, p)| alive[*i] && (0..3).all(|d| lo[d] <= p[d] && p[d] <= hi[d]))
        .map(|(i, _)| i as u32)
        .collect();
    assert_eq!(got, want);
}
