//! Failure injection: every public entry point must reject malformed input
//! with a typed error instead of panicking or silently mis-answering.

use std::sync::Arc;

use sdq::baselines::{BrsIndex, PeIndex, SeqScan, TaIndex};
use sdq::core::geometry::Angle;
use sdq::core::multidim::SdIndex;
use sdq::core::top1::Top1Index;
use sdq::core::topk::TopKIndex;
use sdq::{Dataset, DimRole, SdError, SdQuery};

fn two_d() -> Arc<Dataset> {
    Arc::new(Dataset::from_rows(2, &[vec![0.1, 0.9], vec![0.8, 0.3]]).unwrap())
}

const ROLES: [DimRole; 2] = [DimRole::Attractive, DimRole::Repulsive];

#[test]
fn dataset_rejects_non_finite_everywhere() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert!(matches!(
            Dataset::from_rows(2, &[vec![0.0, bad]]),
            Err(SdError::NonFiniteCoordinate { .. })
        ));
        assert!(SdQuery::new(vec![bad, 0.0], vec![1.0, 1.0]).is_err());
        let mut d = Dataset::from_flat(2, vec![]).unwrap();
        assert!(d.push_row(&[bad, 0.0]).is_err());
        assert!(Top1Index::build(&[(bad, 0.0)], 1.0, 1.0, 1).is_err());
        assert!(TopKIndex::build(&[(0.0, bad)]).is_err());
    }
}

#[test]
fn weights_validation() {
    assert!(SdQuery::new(vec![0.0], vec![-0.5]).is_err());
    assert!(SdQuery::new(vec![0.0], vec![f64::NAN]).is_err());
    assert!(Angle::from_weights(0.0, 0.0).is_err());
    assert!(Angle::from_weights(-1.0, 2.0).is_err());
    // A 2-D query with both pair weights zero is legal (degenerate
    // subproblem), and the SD-Index must still answer.
    let index = SdIndex::build(two_d(), &ROLES).unwrap();
    let q = SdQuery::new(vec![0.5, 0.5], vec![0.0, 0.0]).unwrap();
    assert_eq!(index.query(&q, 1).unwrap().len(), 1);
}

#[test]
fn zero_k_rejected_by_every_method() {
    let data = two_d();
    let q = SdQuery::new(vec![0.5, 0.5], vec![1.0, 1.0]).unwrap();
    assert!(matches!(
        SdIndex::build(data.clone(), &ROLES).unwrap().query(&q, 0),
        Err(SdError::ZeroK)
    ));
    assert!(matches!(
        SeqScan::new(data.clone(), &ROLES).unwrap().query(&q, 0),
        Err(SdError::ZeroK)
    ));
    assert!(matches!(
        TaIndex::build(data.clone(), &ROLES).unwrap().query(&q, 0),
        Err(SdError::ZeroK)
    ));
    assert!(matches!(
        BrsIndex::build(&data, &ROLES).unwrap().query(&q, 0),
        Err(SdError::ZeroK)
    ));
    assert!(matches!(
        PeIndex::build(data, &ROLES).unwrap().query(&q, 0),
        Err(SdError::ZeroK)
    ));
    assert!(matches!(
        Top1Index::build(&[(0.0, 0.0)], 1.0, 1.0, 0),
        Err(SdError::ZeroK)
    ));
}

#[test]
fn dimension_mismatches_rejected() {
    let data = two_d();
    let q1 = SdQuery::new(vec![0.5], vec![1.0]).unwrap();
    assert!(matches!(
        SdIndex::build(data.clone(), &ROLES).unwrap().query(&q1, 1),
        Err(SdError::DimensionMismatch { .. })
    ));
    assert!(SdIndex::build(data.clone(), &[DimRole::Attractive]).is_err());
    assert!(SeqScan::new(data.clone(), &[DimRole::Attractive]).is_err());
    assert!(TaIndex::build(data.clone(), &[DimRole::Attractive]).is_err());
    assert!(BrsIndex::build(&data, &[DimRole::Attractive]).is_err());
    assert!(PeIndex::build(data.clone(), &[DimRole::Attractive]).is_err());
    let mut pe = PeIndex::build(data, &ROLES).unwrap();
    assert!(pe.insert(&[1.0]).is_err());
}

#[test]
fn topk_build_configuration_errors() {
    assert!(matches!(
        TopKIndex::build_with(&[], &sdq::core::topk::default_angles(), 0),
        Err(SdError::InvalidBranching(0))
    ));
    assert!(matches!(
        TopKIndex::build_with(&[], &[], 8),
        Err(SdError::NoAngles)
    ));
    // Angle coverage errors surface at query time.
    let narrow = [
        Angle::from_degrees(40.0).unwrap(),
        Angle::from_degrees(50.0).unwrap(),
    ];
    let idx = TopKIndex::build_with(&[(0.0, 0.0)], &narrow, 4).unwrap();
    assert!(matches!(
        idx.query(0.0, 0.0, 1.0, 0.0, 1),
        Err(SdError::AngleOutOfRange { .. })
    ));
}

#[test]
fn queries_on_empty_structures_are_clean() {
    let empty = Arc::new(Dataset::from_flat(3, vec![]).unwrap());
    let roles = [DimRole::Repulsive, DimRole::Attractive, DimRole::Repulsive];
    let q = SdQuery::new(vec![0.0; 3], vec![1.0; 3]).unwrap();
    assert!(SdIndex::build(empty.clone(), &roles)
        .unwrap()
        .query(&q, 3)
        .unwrap()
        .is_empty());
    assert!(TaIndex::build(empty.clone(), &roles)
        .unwrap()
        .query(&q, 3)
        .unwrap()
        .is_empty());
    assert!(PeIndex::build(empty.clone(), &roles)
        .unwrap()
        .query(&q, 3)
        .unwrap()
        .is_empty());
    assert!(BrsIndex::build(&empty, &roles)
        .unwrap()
        .query(&q, 3)
        .unwrap()
        .is_empty());
    let t1 = Top1Index::new(1.0, 1.0, 2).unwrap();
    assert!(t1.query(0.0, 0.0).is_empty());
    let tk = TopKIndex::build(&[]).unwrap();
    assert!(tk.query(0.0, 0.0, 1.0, 1.0, 2).unwrap().is_empty());
}

#[test]
fn deleting_unknown_ids_is_harmless() {
    let mut t1 = Top1Index::build(&[(0.0, 0.0)], 1.0, 1.0, 1).unwrap();
    assert!(!t1.delete(sdq::PointId::new(99)));
    let mut tk = TopKIndex::build(&[(0.0, 0.0)]).unwrap();
    assert!(!tk.delete(sdq::PointId::new(99)));
    let mut brs = BrsIndex::new(2, &ROLES).unwrap();
    assert!(!brs.delete(sdq::PointId::new(0)));
}

#[test]
fn error_messages_are_informative() {
    let e = Dataset::from_rows(2, &[vec![f64::NAN, 0.0]]).unwrap_err();
    let msg = e.to_string();
    assert!(msg.contains("row 0") && msg.contains("dim 0"), "got: {msg}");
    let e = SdError::AngleOutOfRange {
        requested_deg: 10.0,
        min_deg: 30.0,
        max_deg: 60.0,
    };
    assert!(e.to_string().contains("10"));
    // SdError implements std::error::Error for ? interop.
    let _: &dyn std::error::Error = &e;
}
