//! Equivalence guarantees of the reusable-scratch query engine:
//!
//! * `query_with` on a dirty, reused [`QueryScratch`] is **bit-identical**
//!   to a fresh `query` (same ids, same score bits) on every engine,
//! * `par_query_batch` is bit-identical to the serial query loop,
//! * one `SdIndex` shared immutably across 8 threads answers exactly like
//!   the serial loop (concurrency smoke test).

use proptest::collection::vec;
use proptest::prelude::*;

use sdq::baselines::TaIndex;
use sdq::core::multidim::SdIndex;
use sdq::core::topk::{PackedTopKIndex, TopKIndex};
use sdq::core::QueryScratch;
use sdq::{Dataset, DimRole, ScoredPoint, SdQuery};

fn coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => -100.0..100.0f64,
        1 => Just(0.0),
        1 => Just(1.0),
        1 => -1e6..1e6f64,
    ]
}

fn weight() -> impl Strategy<Value = f64> {
    prop_oneof![4 => 0.0..10.0f64, 1 => Just(0.0), 1 => Just(1.0)]
}

/// Bit-level equality: same ids in the same order, score bits equal.
fn assert_bit_identical(
    what: &str,
    got: &[ScoredPoint],
    want: &[ScoredPoint],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len(), "{}: length mismatch", what);
    for (g, w) in got.iter().zip(want) {
        prop_assert_eq!(g.id, w.id, "{}: id mismatch", what);
        prop_assert_eq!(
            g.score.to_bits(),
            w.score.to_bits(),
            "{}: score bits diverge ({} vs {})",
            what,
            g.score,
            w.score
        );
    }
    Ok(())
}

fn build_queries(dims: usize, raw: &[(Vec<f64>, Vec<f64>)]) -> Vec<SdQuery> {
    raw.iter()
        .map(|(p, w)| SdQuery::new(p[..dims].to_vec(), w[..dims].to_vec()).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // (a) A scratch dirtied by arbitrary earlier queries returns exactly
    // what a fresh allocating query returns — SdIndex and TA baseline.
    #[test]
    fn sd_scratch_reuse_is_bit_identical(
        rows in vec(vec(coord(), 4), 1..80),
        raw_queries in vec((vec(coord(), 4), vec(weight(), 4)), 1..8),
        role_bits in 0u8..16,
        k in 1usize..12,
    ) {
        let dims = 4;
        let roles: Vec<DimRole> = (0..dims)
            .map(|d| if role_bits & (1 << d) != 0 { DimRole::Repulsive } else { DimRole::Attractive })
            .collect();
        let data = Dataset::from_rows(dims, &rows).unwrap();
        let queries = build_queries(dims, &raw_queries);

        let sd = SdIndex::build(data.clone(), &roles).unwrap();
        let ta = TaIndex::build(data, &roles).unwrap();
        // One scratch across all queries: state from query i-1 is the
        // "dirt" query i must be immune to.
        let mut scratch = QueryScratch::new();
        for q in &queries {
            let fresh = sd.query(q, k).unwrap();
            let reused = sd.query_with(q, k, &mut scratch).unwrap();
            assert_bit_identical("SdIndex", reused, &fresh)?;

            let fresh = ta.query(q, k).unwrap();
            let reused = ta.query_with(q, k, &mut scratch).unwrap();
            assert_bit_identical("TaIndex", reused, &fresh)?;
        }
    }

    // (a) continued: the 2-D engines, with the same scratch fed both the
    // indexed-angle and the bracketed path in interleaved order.
    #[test]
    fn topk_scratch_reuse_is_bit_identical(
        pts in vec((coord(), coord()), 1..120),
        queries in vec((coord(), coord(), weight(), weight()), 1..10),
        k in 1usize..12,
    ) {
        let topk = TopKIndex::build(&pts).unwrap();
        let packed = PackedTopKIndex::build(&pts).unwrap();
        let mut scratch = QueryScratch::new();
        for &(qx, qy, alpha, beta) in &queries {
            if alpha == 0.0 && beta == 0.0 {
                continue; // degenerate weights are rejected by both paths
            }
            let fresh = topk.query(qx, qy, alpha, beta, k).unwrap();
            let reused = topk.query_with(qx, qy, alpha, beta, k, &mut scratch).unwrap();
            assert_bit_identical("TopKIndex", reused, &fresh)?;

            let fresh = packed.query(qx, qy, alpha, beta, k).unwrap();
            let reused = packed.query_with(qx, qy, alpha, beta, k, &mut scratch).unwrap();
            assert_bit_identical("PackedTopKIndex", reused, &fresh)?;
        }
    }

    // (b) The parallel batch path returns exactly the serial answers, in
    // input order.
    #[test]
    fn par_query_batch_is_bit_identical_to_serial(
        rows in vec(vec(coord(), 3), 1..60),
        raw_queries in vec((vec(coord(), 3), vec(weight(), 3)), 1..12),
        k in 1usize..8,
        threads in 1usize..9,
    ) {
        let dims = 3;
        let roles = [DimRole::Repulsive, DimRole::Attractive, DimRole::Repulsive];
        let data = Dataset::from_rows(dims, &rows).unwrap();
        let queries = build_queries(dims, &raw_queries);
        let sd = SdIndex::build(data, &roles).unwrap();

        let serial: Vec<Vec<ScoredPoint>> =
            queries.iter().map(|q| sd.query(q, k).unwrap()).collect();
        let parallel = sd.par_query_batch(&queries, k, threads).unwrap();
        prop_assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_bit_identical("par_query_batch", p, s)?;
        }
    }
}

/// (c) Concurrency smoke test: 8 threads hammer one shared `SdIndex`, each
/// with its own scratch, and every thread sees the serial answers.
#[test]
fn eight_threads_share_one_index() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(88);
    let dims = 4;
    let rows: Vec<Vec<f64>> = (0..4_000)
        .map(|_| (0..dims).map(|_| rng.gen_range(0.0..1.0)).collect())
        .collect();
    let roles = [
        DimRole::Attractive,
        DimRole::Repulsive,
        DimRole::Attractive,
        DimRole::Repulsive,
    ];
    let data = Dataset::from_rows(dims, &rows).unwrap();
    let sd = SdIndex::build(data, &roles).unwrap();
    let queries: Vec<SdQuery> = (0..32)
        .map(|_| {
            SdQuery::new(
                (0..dims).map(|_| rng.gen_range(0.0..1.0)).collect(),
                (0..dims).map(|_| rng.gen_range(0.0..1.0)).collect(),
            )
            .unwrap()
        })
        .collect();
    let serial: Vec<Vec<ScoredPoint>> = queries.iter().map(|q| sd.query(q, 8).unwrap()).collect();

    std::thread::scope(|scope| {
        for t in 0..8 {
            let sd = &sd;
            let queries = &queries;
            let serial = &serial;
            scope.spawn(move || {
                let mut scratch = QueryScratch::new();
                // Each thread walks the workload from a different offset so
                // the index is probed at 8 different spots at once.
                for i in 0..queries.len() {
                    let j = (i + t * 4) % queries.len();
                    let got = sd.query_with(&queries[j], 8, &mut scratch).unwrap();
                    let want = &serial[j];
                    assert_eq!(got.len(), want.len(), "thread {t}, query {j}");
                    for (g, w) in got.iter().zip(want) {
                        assert_eq!(g.id, w.id, "thread {t}, query {j}");
                        assert_eq!(
                            g.score.to_bits(),
                            w.score.to_bits(),
                            "thread {t}, query {j}"
                        );
                    }
                }
            });
        }
    });
}
