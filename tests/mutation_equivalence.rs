//! Exactness guarantees of the live-mutation subsystem: **any** interleaving
//! of insert / delete / query / compact over an `SdEngine` answers every
//! query bit-identically to a *fresh engine rebuilt from the final logical
//! dataset* at that instant — including ties at the k-th score (tie-heavy
//! coordinate generators make duplicated rows and tied scores the norm).
//!
//! The logical dataset is the live base rows in id order followed by the
//! live delta rows in insertion order. A fresh rebuild numbers those rows
//! densely, while the mutated engine keeps stable sparse ids, so the
//! comparison maps the rebuild's ids through the (monotone) live-id table:
//! the same rows, the same score bits, the same tie resolution. After a
//! compaction the mapping becomes the identity and answers are literally
//! identical, ids included.
//!
//! A single `EngineScratch` is reused across every query of an op sequence
//! — dirty-scratch reuse after arbitrary mutations must equal a fresh
//! query, which each step also checks.

use proptest::collection::vec;
use proptest::prelude::*;

use sdq::engine::{EngineOptions, EngineScratch, SdEngine};
use sdq::{Dataset, DimRole, PointId, ScoredPoint, SdQuery};

const DIMS: usize = 3;
const ROLES: [DimRole; DIMS] = [DimRole::Attractive, DimRole::Repulsive, DimRole::Attractive];

/// Coordinates from a tiny alphabet: duplicate rows and exact score ties
/// at the k-th position are the norm, not the exception.
fn tie_heavy_coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        1 => Just(0.0),
        1 => Just(1.0),
        1 => Just(2.0),
        1 => Just(-1.5),
        1 => -8.0..8.0f64,
    ]
}

fn tie_heavy_weight() -> impl Strategy<Value = f64> {
    prop_oneof![
        2 => Just(0.0),
        2 => Just(1.0),
        1 => 0.0..3.0f64,
    ]
}

#[derive(Debug, Clone)]
enum Op {
    /// Append a row to the delta region.
    Insert(Vec<f64>),
    /// Tombstone the (selector % addressable-rows)-th id; hitting an
    /// already-dead row must be a reported no-op.
    Delete(usize),
    /// Answer query (selector % workload) at the given k on the mutated
    /// engine and on a fresh rebuild of the logical dataset.
    Query(usize, usize),
    /// Fold the delta back, drop tombstones, renumber densely.
    Compact,
}

/// Weighted op generator (the vendored proptest shim has no `prop_map`, so
/// this composes the primitive strategies by hand): 3:3:3:1 over
/// insert / delete / query / compact.
#[derive(Debug)]
struct OpStrategy;

impl Strategy for OpStrategy {
    type Value = Op;
    fn generate(&self, rng: &mut proptest::TestRng) -> Op {
        match (0usize..10).generate(rng) {
            0..=2 => Op::Insert(vec(tie_heavy_coord(), DIMS).generate(rng)),
            3..=5 => Op::Delete((0usize..10_000).generate(rng)),
            6..=8 => Op::Query((0usize..16).generate(rng), (1usize..12).generate(rng)),
            _ => Op::Compact,
        }
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    OpStrategy
}

fn assert_mapped_identical(
    what: &str,
    got: &[ScoredPoint],
    want: &[ScoredPoint],
    live_ids: &[u32],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len(), "{}: length mismatch", what);
    for (g, w) in got.iter().zip(want) {
        prop_assert_eq!(
            g.id.raw(),
            live_ids[w.id.index()],
            "{}: id mismatch (fresh id {})",
            what,
            w.id.index()
        );
        prop_assert_eq!(
            g.score.to_bits(),
            w.score.to_bits(),
            "{}: score bits diverge ({} vs {})",
            what,
            g.score,
            w.score
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // The headline guarantee of the mutation subsystem.
    #[test]
    fn mutated_engine_is_bit_identical_to_fresh_rebuild(
        rows in vec(vec(tie_heavy_coord(), DIMS), 0..40),
        ops in vec(op_strategy(), 1..28),
        raw_queries in vec((vec(tie_heavy_coord(), DIMS), vec(tie_heavy_weight(), DIMS)), 1..5),
        shards in 1usize..5,
    ) {
        let queries: Vec<SdQuery> = raw_queries
            .iter()
            .map(|(p, w)| SdQuery::new(p.clone(), w.clone()).unwrap())
            .collect();
        let options = EngineOptions { shards, threads: 1, ..EngineOptions::default() };
        let mut engine = SdEngine::build_with(
            Dataset::from_rows(DIMS, &rows).unwrap(),
            &ROLES,
            &options,
        ).unwrap();
        // The shadow model: live rows in logical order, and each one's
        // current engine id (always ascending, so the mapping is monotone).
        let mut logical: Vec<Vec<f64>> = rows.clone();
        let mut live_ids: Vec<u32> = (0..rows.len() as u32).collect();
        // One scratch for the whole interleaving: dirty reuse == fresh.
        let mut scratch = EngineScratch::new();

        for (step, op) in ops.iter().enumerate() {
            match op {
                Op::Insert(row) => {
                    let id = engine.insert(row).unwrap();
                    live_ids.push(id.raw());
                    logical.push(row.clone());
                }
                Op::Delete(sel) => {
                    let total = engine.total_rows();
                    if total == 0 {
                        prop_assert!(engine.delete(PointId::new(0)).is_err());
                        continue;
                    }
                    let target = (sel % total) as u32;
                    let newly = engine.delete(PointId::new(target)).unwrap();
                    match live_ids.binary_search(&target) {
                        Ok(pos) => {
                            prop_assert!(newly, "step {}: live row reported already dead", step);
                            live_ids.remove(pos);
                            logical.remove(pos);
                        }
                        Err(_) => prop_assert!(!newly, "step {}: dead row deleted twice", step),
                    }
                }
                Op::Query(qi, k) => {
                    let q = &queries[qi % queries.len()];
                    let fresh = SdEngine::build_with(
                        Dataset::from_rows(DIMS, &logical).unwrap(),
                        &ROLES,
                        &options,
                    ).unwrap();
                    let want = fresh.query(q, *k).unwrap();
                    let got = engine.query_with(q, *k, &mut scratch).unwrap().to_vec();
                    assert_mapped_identical(
                        &format!("step {step} (dirty scratch)"), &got, &want, &live_ids,
                    )?;
                    let got_fresh_scratch = engine.query(q, *k).unwrap();
                    prop_assert_eq!(
                        &got, &got_fresh_scratch,
                        "step {}: dirty scratch diverges from fresh scratch", step
                    );
                }
                Op::Compact => {
                    let report = engine.compact().unwrap();
                    prop_assert_eq!(report.live_rows, logical.len());
                    prop_assert!(!engine.has_mutations());
                    prop_assert_eq!(engine.total_rows(), logical.len());
                    live_ids = (0..logical.len() as u32).collect();
                }
            }
            prop_assert_eq!(engine.len(), logical.len(), "step {}: live count drifted", step);
        }

        // Epilogue: final query, then compact, then the same query — the
        // compacted engine must be *literally* identical to the rebuild.
        let q = &queries[0];
        let fresh = SdEngine::build_with(
            Dataset::from_rows(DIMS, &logical).unwrap(),
            &ROLES,
            &options,
        ).unwrap();
        let want = fresh.query(q, 7).unwrap();
        let got = engine.query_with(q, 7, &mut scratch).unwrap().to_vec();
        assert_mapped_identical("epilogue", &got, &want, &live_ids)?;
        engine.compact().unwrap();
        let got = engine.query_with(q, 7, &mut scratch).unwrap();
        prop_assert_eq!(got, want.as_slice(), "post-compact answers must match literally");
    }

    // Multi-worker mutated execution (threshold sharing + masks raced
    // across scoped threads) equals the single-worker answer.
    #[test]
    fn parallel_mutated_execution_matches_sequential(
        rows in vec(vec(tie_heavy_coord(), DIMS), 4..48),
        inserts in vec(vec(tie_heavy_coord(), DIMS), 0..8),
        delete_sels in vec(0usize..10_000, 0..8),
        raw_query in (vec(tie_heavy_coord(), DIMS), vec(tie_heavy_weight(), DIMS)),
        k in 1usize..10,
        shards in 2usize..5,
    ) {
        let q = SdQuery::new(raw_query.0, raw_query.1).unwrap();
        let mut sequential = SdEngine::build_with(
            Dataset::from_rows(DIMS, &rows).unwrap(),
            &ROLES,
            &EngineOptions { shards, threads: 1, ..EngineOptions::default() },
        ).unwrap();
        for row in &inserts {
            sequential.insert(row).unwrap();
        }
        for sel in &delete_sels {
            let target = (sel % sequential.total_rows()) as u32;
            sequential.delete(PointId::new(target)).unwrap();
        }
        let mut parallel = sequential.clone();
        parallel.set_threads(4);
        let want = sequential.query(&q, k).unwrap();
        let got = parallel.query(&q, k).unwrap();
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.id, w.id);
            prop_assert_eq!(g.score.to_bits(), w.score.to_bits());
        }
    }

    // Snapshot format v3: save → load preserves mutated answers bit-exactly
    // and the bytes stay deterministic.
    #[test]
    fn mutated_snapshot_roundtrip_is_bit_identical(
        rows in vec(vec(tie_heavy_coord(), DIMS), 1..40),
        inserts in vec(vec(tie_heavy_coord(), DIMS), 1..6),
        delete_sels in vec(0usize..10_000, 0..6),
        raw_query in (vec(tie_heavy_coord(), DIMS), vec(tie_heavy_weight(), DIMS)),
        k in 1usize..10,
        shards in 1usize..4,
    ) {
        use sdq::store::{Snapshot, FORMAT_V3};
        let q = SdQuery::new(raw_query.0, raw_query.1).unwrap();
        let mut engine = SdEngine::build_with(
            Dataset::from_rows(DIMS, &rows).unwrap(),
            &ROLES,
            &EngineOptions { shards, ..EngineOptions::default() },
        ).unwrap();
        for row in &inserts {
            engine.insert(row).unwrap();
        }
        for sel in &delete_sels {
            let target = (sel % engine.total_rows()) as u32;
            engine.delete(PointId::new(target)).unwrap();
        }

        let mut snap = Snapshot::new();
        snap.engine = Some(engine.clone());
        let bytes = snap.to_bytes();
        // A mutated engine without a durability section stays at v3 — v4 is
        // reserved for WAL-backed snapshots.
        prop_assert_eq!(Snapshot::inspect_bytes(&bytes).unwrap().version, FORMAT_V3);
        let back = Snapshot::from_bytes(&bytes).unwrap();
        let restored = back.engine.as_ref().unwrap();
        prop_assert_eq!(restored.delta_rows(), engine.delta_rows());
        prop_assert_eq!(restored.tombstone_ids(), engine.tombstone_ids());
        let want = engine.query(&q, k).unwrap();
        let got = restored.query(&q, k).unwrap();
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.id, w.id);
            prop_assert_eq!(g.score.to_bits(), w.score.to_bits());
        }
        prop_assert_eq!(back.to_bytes(), bytes);
    }
}
