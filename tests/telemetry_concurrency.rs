//! The telemetry registry must stay honest under fire: histograms and the
//! event journal are written from query and mutation threads with relaxed
//! atomics and a seqlock ring, so a concurrent reader may race every store.
//!
//! * **No torn percentiles** — any histogram snapshot taken mid-stream is
//!   internally consistent (quantiles are monotone in `q`, bounded by the
//!   recorded max) and per-bucket counts only ever grow between snapshots.
//! * **Journal seq discipline** — a drained snapshot's sequence numbers are
//!   strictly increasing, and the only missing prefixes are the ones the
//!   ring itself declares via `overwritten()`.
//! * **Telemetry is free** — the same workload served with a private
//!   recording registry and with the default registry returns bit-identical
//!   results: observability may never change an answer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use proptest::collection::vec;
use proptest::prelude::*;

use sdq::core::telemetry::{EventJournal, EventKind, HistoSnapshot, LatencyHisto, Telemetry};
use sdq::engine::{EngineOptions, SdEngine};
use sdq::{Dataset, DimRole, ScoredPoint, SdQuery};

const DIMS: usize = 4;
const ROLES: [DimRole; DIMS] = [
    DimRole::Attractive,
    DimRole::Repulsive,
    DimRole::Repulsive,
    DimRole::Attractive,
];

fn build_engine(rows: &[Vec<f64>], shards: usize) -> SdEngine {
    let data = Dataset::from_rows(DIMS, rows).unwrap();
    SdEngine::build_with(
        data,
        &ROLES,
        &EngineOptions {
            shards,
            threads: 1,
            ..EngineOptions::default()
        },
    )
    .unwrap()
}

/// Deterministic splitmix64 stream for the worker workloads.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

fn random_query(state: &mut u64) -> SdQuery {
    let point: Vec<f64> = (0..DIMS)
        .map(|_| unit_f64(splitmix64(state)) * 8.0)
        .collect();
    SdQuery::new(point, vec![1.0; DIMS]).unwrap()
}

/// A histogram snapshot must be internally consistent even when taken while
/// writers are racing it.
fn assert_snapshot_sane(s: &HistoSnapshot) {
    if s.count() == 0 {
        assert_eq!(s.max_nanos(), 0);
        return;
    }
    let p50 = s.quantile(0.50);
    let p90 = s.quantile(0.90);
    let p99 = s.quantile(0.99);
    assert!(
        p50 <= p90 && p90 <= p99,
        "quantiles not monotone: {p50} {p90} {p99}"
    );
    assert!(p50 >= 0.0);
    assert!(
        s.sum_nanos() >= s.count(),
        "sub-nanosecond mean is impossible here"
    );
}

/// Per-bucket counts may only grow: a later snapshot dominates an earlier
/// one bucket-wise, no matter how the reads interleave with writers.
fn assert_dominates(later: &HistoSnapshot, earlier: &HistoSnapshot) {
    for (i, (l, e)) in later.buckets.iter().zip(earlier.buckets.iter()).enumerate() {
        assert!(l >= e, "bucket {i} shrank: {l} < {e}");
    }
    assert!(later.count() >= earlier.count());
    assert!(later.max_nanos() >= earlier.max_nanos());
}

#[test]
fn histograms_and_journal_survive_concurrent_hammering() {
    let rows: Vec<Vec<f64>> = (0..1500)
        .map(|i| {
            let mut state = 0xD1CE_u64 ^ (i as u64);
            (0..DIMS)
                .map(|_| unit_f64(splitmix64(&mut state)) * 8.0)
                .collect()
        })
        .collect();
    let engine = build_engine(&rows, 3);
    let tel = Telemetry::new();
    tel.set_slow_query_micros(1); // every probe query journals a slow-query event
    let stop = Arc::new(AtomicBool::new(false));

    // Query workers share the engine (and therefore the registry) by clone.
    let mut workers = Vec::new();
    for t in 0..3u64 {
        let mut engine = engine.clone();
        engine.set_telemetry(Arc::clone(&tel));
        let stop = Arc::clone(&stop);
        workers.push(thread::spawn(move || {
            let mut state = 0xBEEF ^ t;
            let mut rounds = 0u64;
            while !stop.load(Ordering::Relaxed) && rounds < 400 {
                let q = random_query(&mut state);
                engine.query(&q, 8).unwrap();
                rounds += 1;
            }
        }));
    }
    // One mutator drives inserts, deletes and compactions on its own clone.
    {
        let mut engine = engine.clone();
        engine.set_telemetry(Arc::clone(&tel));
        let stop = Arc::clone(&stop);
        workers.push(thread::spawn(move || {
            let mut state = 0xFACE_u64;
            for round in 0..120u32 {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let row: Vec<f64> = (0..DIMS)
                    .map(|_| unit_f64(splitmix64(&mut state)) * 8.0)
                    .collect();
                let id = engine.insert(&row).unwrap();
                if round % 3 == 0 {
                    engine.delete(id).unwrap();
                }
                if round % 40 == 39 {
                    engine.compact().unwrap();
                }
            }
        }));
    }

    // The reader races every writer: snapshots must never tear.
    let mut prev_query = tel.query.snapshot();
    let mut prev_seq_high: Option<u64> = None;
    for _ in 0..200 {
        for (_, histo) in tel.histograms() {
            assert_snapshot_sane(&histo.snapshot());
        }
        let query_now = tel.query.snapshot();
        assert_dominates(&query_now, &prev_query);
        prev_query = query_now;

        let records = tel.journal.snapshot();
        let mut last: Option<u64> = None;
        for rec in &records {
            if let Some(prev) = last {
                assert!(rec.seq > prev, "journal seqs not strictly increasing");
            }
            last = Some(rec.seq);
        }
        // Everything below the retained window must be declared overwritten.
        if let (Some(first), Some(_)) = (records.first(), records.last()) {
            assert!(
                first.seq <= tel.journal.overwritten(),
                "undeclared gap: first retained seq {} but only {} overwritten",
                first.seq,
                tel.journal.overwritten()
            );
        }
        if let Some(high) = records.last().map(|r| r.seq) {
            if let Some(prev_high) = prev_seq_high {
                assert!(high >= prev_high, "journal high-water mark went backwards");
            }
            prev_seq_high = Some(high);
        }
        thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }

    // After quiescence the books must balance exactly.
    let final_query = tel.query.snapshot();
    assert!(final_query.count() >= 3, "query workers recorded nothing");
    assert_eq!(
        final_query.count(),
        final_query.buckets.iter().sum::<u64>(),
        "bucket sum disagrees with count"
    );
    assert_eq!(
        tel.journal.pushed(),
        tel.journal.depth() + tel.journal.overwritten(),
        "journal accounting broken"
    );
    let slow = tel
        .journal
        .snapshot()
        .iter()
        .filter(|r| matches!(r.kind, EventKind::SlowQuery { .. }))
        .count();
    assert!(slow > 0, "1 µs threshold captured no slow queries");
}

#[test]
fn journal_overwrite_declares_every_dropped_record() {
    let journal = EventJournal::with_capacity(8);
    for i in 0..50u64 {
        journal.push(EventKind::EpochTransition { from: i, to: i + 1 });
    }
    assert_eq!(journal.pushed(), 50);
    assert_eq!(journal.depth(), 8);
    assert_eq!(journal.overwritten(), 42);
    let records = journal.snapshot();
    assert_eq!(records.len(), 8);
    // The retained window is exactly the newest `capacity` records.
    for (i, rec) in records.iter().enumerate() {
        assert_eq!(rec.seq, 42 + i as u64);
    }
}

#[test]
fn histogram_merge_is_lossless_across_threads() {
    let shards: Vec<Arc<LatencyHisto>> = (0..4).map(|_| Arc::new(LatencyHisto::new())).collect();
    let mut handles = Vec::new();
    for (t, histo) in shards.iter().enumerate() {
        let histo = Arc::clone(histo);
        handles.push(thread::spawn(move || {
            let mut state = 0xABCD ^ t as u64;
            for _ in 0..10_000 {
                histo.record_nanos(splitmix64(&mut state) % 1_000_000_000);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut merged = shards[0].snapshot();
    for histo in &shards[1..] {
        merged.merge(&histo.snapshot());
    }
    assert_eq!(merged.count(), 40_000);
    assert_eq!(merged.count(), merged.buckets.iter().sum::<u64>());
    assert_snapshot_sane(&merged);
}

fn assert_bit_identical(got: &[ScoredPoint], want: &[ScoredPoint]) {
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.id, w.id);
        assert_eq!(g.score.to_bits(), w.score.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Telemetry may never change an answer: the same engine serving the
    // same workload with recording on (private registry, aggressive
    // slow-query capture) and off (fresh quiet registry) is bit-identical.
    #[test]
    fn telemetry_on_off_results_bit_identical(
        rows in vec(vec(-8.0..8.0f64, DIMS), 8..120),
        raw_queries in vec(vec(-8.0..8.0f64, DIMS), 1..8),
        k in 1usize..10,
        shards in 1usize..4,
    ) {
        let queries: Vec<SdQuery> = raw_queries
            .iter()
            .map(|p| SdQuery::new(p.clone(), vec![1.0; DIMS]).unwrap())
            .collect();

        let mut on = build_engine(&rows, shards);
        let tel = Telemetry::new();
        tel.set_slow_query_micros(1);
        on.set_telemetry(Arc::clone(&tel));

        let mut off = build_engine(&rows, shards);
        off.set_telemetry(Telemetry::new());

        for q in &queries {
            let a = on.query(q, k).unwrap();
            let b = off.query(q, k).unwrap();
            assert_bit_identical(&a, &b);
        }
        // The recording registry really did record.
        prop_assert_eq!(tel.query.snapshot().count(), queries.len() as u64);
        let slow = tel
            .journal
            .snapshot()
            .iter()
            .filter(|r| matches!(r.kind, EventKind::SlowQuery { .. }))
            .count();
        prop_assert!(slow <= queries.len());
    }
}
