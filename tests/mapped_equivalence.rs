//! Zero-copy equivalence: a snapshot opened with [`Snapshot::open_mapped`]
//! (format v5, queries served straight off the borrowed file bytes) must be
//! indistinguishable from the same file decoded eagerly with
//! [`Snapshot::load`] — every query answered bit-identically, every region
//! checksum verifiable, and any interleaving of inserts / deletes /
//! compactions applied to both replicas keeping them in lock-step, down to
//! the bytes each one re-serialises.
//!
//! Tie-heavy coordinate generators make duplicate rows and exact score ties
//! the norm, so "bit-identical" here exercises tie resolution at the k-th
//! position, not just well-separated scores.

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::collection::vec;
use proptest::prelude::*;

use sdq::store::{Snapshot, SnapshotFormat};
use sdq::{Dataset, DimRole, PointId, SdQuery};

const DIMS: usize = 3;
const ROLES: [DimRole; DIMS] = [DimRole::Attractive, DimRole::Repulsive, DimRole::Attractive];

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A fresh on-disk path per proptest case (cases run concurrently).
fn case_path() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sdq-mapped-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("case-{}.sdq", CASE.fetch_add(1, Ordering::Relaxed)))
}

fn tie_heavy_coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        1 => Just(0.0),
        1 => Just(1.0),
        1 => Just(-2.5),
        2 => -10.0..10.0f64,
    ]
}

fn row() -> impl Strategy<Value = Vec<f64>> {
    vec(tie_heavy_coord(), DIMS)
}

fn weight() -> impl Strategy<Value = f64> {
    prop_oneof![2 => Just(1.0), 1 => Just(0.0), 2 => 0.0..4.0f64]
}

fn query() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (vec(tie_heavy_coord(), DIMS), vec(weight(), DIMS))
}

#[derive(Debug, Clone)]
enum Op {
    /// Append a row to both replicas' delta regions.
    Insert(Vec<f64>),
    /// Tombstone the (selector % live-ids)-th id on both replicas.
    Delete(usize),
    /// Fold deltas back and renumber densely — on both replicas, since
    /// compaction renumbers ids.
    Compact,
}

/// Weighted op generator (the vendored proptest shim has no `prop_map`,
/// so this composes the primitive strategies by hand): 4:2:1 over
/// insert / delete / compact.
#[derive(Debug)]
struct OpStrategy;

impl Strategy for OpStrategy {
    type Value = Op;
    fn generate(&self, rng: &mut proptest::TestRng) -> Op {
        match (0usize..7).generate(rng) {
            0..=3 => Op::Insert(row().generate(rng)),
            4..=5 => Op::Delete((0usize..10_000).generate(rng)),
            _ => Op::Compact,
        }
    }
}

fn op() -> impl Strategy<Value = Op> {
    OpStrategy
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // `open_mapped` and the eager owned decode answer every query — over
    // every mutation interleaving — with bit-identical results, and both
    // replicas re-serialise to byte-identical v5 containers.
    #[test]
    fn mapped_and_owned_replicas_stay_bit_identical(
        rows in vec(row(), 1..40),
        raw_queries in vec(query(), 1..5),
        ks in vec(1usize..12, 1..5),
        ops in vec(op(), 0..10),
        shards in 1usize..4,
    ) {
        let queries: Vec<SdQuery> = raw_queries
            .iter()
            .map(|(p, w)| SdQuery::new(p.clone(), w.clone()).unwrap())
            .collect();
        let options = sdq::engine::EngineOptions {
            shards,
            threads: 1,
            ..sdq::engine::EngineOptions::default()
        };
        let engine = sdq::engine::SdEngine::build_with(
            Dataset::from_rows(DIMS, &rows).unwrap(),
            &ROLES,
            &options,
        )
        .unwrap();

        let mut snap = Snapshot::new();
        snap.roles = Some(ROLES.to_vec());
        snap.engine = Some(engine);
        let path = case_path();
        snap.save_v5(&path).unwrap();

        // Two replicas of the same file: borrowed bytes vs eager decode.
        let mapped = Snapshot::open_mapped(&path).unwrap();
        prop_assert!(mapped.is_mapped());
        let mut mapped_snap = mapped.snapshot;
        let mut owned_snap = Snapshot::load(&path).unwrap();
        prop_assert_eq!(mapped_snap.preferred_format(), SnapshotFormat::V5);

        let mut live: Vec<u32> = (0..rows.len() as u32).collect();
        let mut next_id = rows.len() as u32;

        // Interleave mutations with full query sweeps on both replicas.
        for op in &ops {
            {
                let m = mapped_snap.engine.as_mut().unwrap();
                let o = owned_snap.engine.as_mut().unwrap();
                match op {
                    Op::Insert(r) => {
                        let id_m = m.insert(r).unwrap();
                        let id_o = o.insert(r).unwrap();
                        prop_assert_eq!(id_m, id_o);
                        live.push(next_id);
                        next_id += 1;
                    }
                    Op::Delete(sel) => {
                        if live.is_empty() {
                            continue;
                        }
                        let id = live.remove(sel % live.len());
                        let hit_m = m.delete(PointId::new(id)).unwrap();
                        let hit_o = o.delete(PointId::new(id)).unwrap();
                        prop_assert_eq!(hit_m, hit_o);
                    }
                    Op::Compact => {
                        m.compact().unwrap();
                        o.compact().unwrap();
                        // Compaction renumbers ids densely on both sides.
                        live = (0..live.len() as u32).collect();
                        next_id = live.len() as u32;
                    }
                }
            }
            for q in &queries {
                for &k in &ks {
                    let a = mapped_snap.engine.as_ref().unwrap().query(q, k).unwrap();
                    let b = owned_snap.engine.as_ref().unwrap().query(q, k).unwrap();
                    prop_assert_eq!(a, b);
                }
            }
        }

        // The query sweep must also hold on the untouched replicas
        // (the loop above only runs after a mutation).
        for q in &queries {
            for &k in &ks {
                let a = mapped_snap.engine.as_ref().unwrap().query(q, k).unwrap();
                let b = owned_snap.engine.as_ref().unwrap().query(q, k).unwrap();
                prop_assert_eq!(a, b);
            }
        }

        // Every lazily-deferred region checksum still verifies, and both
        // replicas re-serialise to the byte-identical v5 container.
        mapped_snap.verify_integrity().unwrap();
        prop_assert_eq!(
            mapped_snap.to_bytes_v5().unwrap(),
            owned_snap.to_bytes_v5().unwrap()
        );

        std::fs::remove_file(&path).ok();
    }
}

/// The lazy-verification surface itself: a mapped open defers region CRCs,
/// a query verifies the regions it touched, and `verify_all` settles the
/// rest — with every state transition observable through the public API.
#[test]
fn mapped_regions_verify_on_demand() {
    use sdq::store::CrcState;

    let rows: Vec<Vec<f64>> = (0..64)
        .map(|i| vec![i as f64 * 0.25, (64 - i) as f64 * 0.5, (i % 7) as f64])
        .collect();
    let engine = sdq::engine::SdEngine::build_with(
        Dataset::from_rows(DIMS, &rows).unwrap(),
        &ROLES,
        &sdq::engine::EngineOptions {
            shards: 2,
            threads: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let mut snap = Snapshot::new();
    snap.roles = Some(ROLES.to_vec());
    snap.engine = Some(engine);
    let path = case_path();
    snap.save_v5(&path).unwrap();

    let mapped = Snapshot::open_mapped(&path).unwrap();
    assert!(mapped.is_mapped());
    assert!(!mapped.regions().is_empty());
    assert!(mapped.regions().iter().any(|r| r.state() == CrcState::Lazy));

    let q = SdQuery::uniform_weights(vec![1.0, 2.0, 3.0], &ROLES);
    mapped
        .snapshot
        .engine
        .as_ref()
        .unwrap()
        .query(&q, 5)
        .unwrap();
    assert!(mapped
        .regions()
        .iter()
        .any(|r| r.state() == CrcState::Verified));

    mapped.verify_all().unwrap();
    assert!(mapped
        .regions()
        .iter()
        .all(|r| r.state() == CrcState::Verified));

    std::fs::remove_file(&path).ok();
}
