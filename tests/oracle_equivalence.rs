//! Cross-crate integration tests: every index structure and baseline must
//! agree with the sequential-scan oracle on every distribution, any mix of
//! roles, runtime weights and k.

use std::sync::Arc;

use sdq::baselines::{BrsIndex, PeIndex, SeqScan, TaIndex, TopKAlgorithm};
use sdq::core::multidim::{PairingStrategy, SdIndex, SdIndexOptions};
use sdq::data::{generate, uniform_queries, Distribution};
use sdq::{DimRole, ScoredPoint};

fn assert_equiv(method: &str, got: &[ScoredPoint], want: &[ScoredPoint], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{method} length mismatch ({ctx})");
    for (g, w) in got.iter().zip(want) {
        assert!(
            (g.score - w.score).abs() < 1e-9,
            "{method} mismatch ({ctx}):\n got {got:?}\nwant {want:?}"
        );
    }
}

fn roles_for(dims: usize, attractive: usize) -> Vec<DimRole> {
    (0..dims)
        .map(|d| {
            if d < attractive {
                DimRole::Attractive
            } else {
                DimRole::Repulsive
            }
        })
        .collect()
}

#[test]
fn all_methods_agree_across_distributions_and_dims() {
    for dist in Distribution::ALL {
        for dims in [1usize, 2, 3, 6] {
            let n = 400;
            let data = Arc::new(generate(dist, n, dims, 0xBEEF + dims as u64));
            for attractive in [0, dims / 2, dims] {
                let roles = roles_for(dims, attractive);
                let oracle = SeqScan::new(data.clone(), &roles).unwrap();
                let methods: Vec<Box<dyn TopKAlgorithm>> = vec![
                    Box::new(SdIndex::build(data.clone(), &roles).unwrap()),
                    Box::new(TaIndex::build(data.clone(), &roles).unwrap()),
                    Box::new(BrsIndex::build(&data, &roles).unwrap()),
                    Box::new(PeIndex::build(data.clone(), &roles).unwrap()),
                ];
                let queries = uniform_queries(6, dims, 0xCAFE);
                for q in &queries {
                    for k in [1usize, 5, 17] {
                        let want = oracle.query(q, k).unwrap();
                        for m in &methods {
                            let got = m.top_k(q, k).unwrap();
                            let ctx =
                                format!("{} dims={dims} att={attractive} k={k}", dist.label());
                            assert_equiv(m.name(), &got, &want, &ctx);
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn k_equals_n_and_beyond() {
    let data = Arc::new(generate(Distribution::Uniform, 23, 4, 7));
    let roles = roles_for(4, 2);
    let oracle = SeqScan::new(data.clone(), &roles).unwrap();
    let sd = SdIndex::build(data.clone(), &roles).unwrap();
    let queries = uniform_queries(4, 4, 11);
    for q in &queries {
        for k in [23usize, 24, 100] {
            assert_equiv(
                "SD-Index",
                &sd.query(q, k).unwrap(),
                &oracle.query(q, k).unwrap(),
                "k≥n",
            );
        }
    }
}

#[test]
fn correlation_aware_pairing_agrees_with_oracle() {
    let data = Arc::new(generate(Distribution::Correlated, 500, 6, 13));
    let roles = roles_for(6, 3);
    let oracle = SeqScan::new(data.clone(), &roles).unwrap();
    let opts = SdIndexOptions {
        pairing: PairingStrategy::CorrelationAware,
        ..Default::default()
    };
    let sd = SdIndex::build_with(data, &roles, &opts).unwrap();
    for q in &uniform_queries(10, 6, 17) {
        assert_equiv(
            "SD-Index(corr)",
            &sd.query(q, 8).unwrap(),
            &oracle.query(q, 8).unwrap(),
            "",
        );
    }
}

#[test]
fn batch_parallel_query_agrees() {
    let data = Arc::new(generate(Distribution::AntiCorrelated, 600, 4, 19));
    let roles = roles_for(4, 2);
    let sd = SdIndex::build(data, &roles).unwrap();
    let queries = uniform_queries(24, 4, 23);
    let sequential: Vec<_> = queries.iter().map(|q| sd.query(q, 5).unwrap()).collect();
    let parallel = sd.par_query_batch(&queries, 5, 4).unwrap();
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_equiv("par_query_batch", p, s, "");
    }
}

#[test]
fn facade_reexports_work() {
    // The umbrella crate must expose the full workflow.
    let data = sdq::Dataset::from_rows(2, &[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
    let roles = vec![sdq::DimRole::Attractive, sdq::DimRole::Repulsive];
    let idx = sdq::core::multidim::SdIndex::build(data, &roles).unwrap();
    let q = sdq::SdQuery::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
    assert_eq!(idx.query(&q, 1).unwrap()[0].score, 1.0);
    let _ = sdq::sd_score(&[0.0, 1.0], &[0.0, 0.0], &roles, &[1.0, 1.0]);
}
