//! Observability must be free and honest: the [`QueryProfile`] counters
//! threaded through every hot path may never change an answer, and the
//! numbers they report must be internally consistent.
//!
//! * A profiled query (timing on, dirty recycled scratch) is **bit
//!   identical** to the plain allocation path, on the monolithic
//!   [`SdIndex`] and on the sharded [`SdEngine`].
//! * Counters obey the pipeline algebra: `scored ≤ gathered ≤ fetched`,
//!   `gathered + seen_hits + tombstones_skipped == fetched`, the pruning
//!   funnel is monotone non-increasing past its dataset-size head, and
//!   `emitted == min(k, live)`.
//! * Forced-scalar kernels report exactly the same pruning counters as
//!   the dispatched ISA — only the ISA name (and, in principle, the batch
//!   granularity) may differ. Pruning decisions are ISA-independent.
//! * The engine-level [`EngineMetrics`] registry accumulates across
//!   queries and compactions, and cumulative `MutationStats` totals
//!   survive both compaction and `restore_mutations`.

use proptest::collection::vec;
use proptest::prelude::*;

use sdq::core::kernels;
use sdq::core::multidim::SdIndex;
use sdq::core::{QueryProfile, QueryScratch};
use sdq::engine::{EngineOptions, EngineScratch, SdEngine};
use sdq::{Dataset, DimRole, PointId, ScoredPoint, SdQuery};

/// Tiny coordinate alphabet: duplicate rows and tied scores are common,
/// which stresses the seen-set and floor-update counters.
fn coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        1 => Just(0.0),
        1 => Just(1.0),
        1 => Just(-2.0),
        3 => -8.0..8.0f64,
    ]
}

/// Weights with zeros so the planner's degenerate/1-D branches (which
/// route rows through the pass-through funnel stages) are exercised.
fn weight() -> impl Strategy<Value = f64> {
    prop_oneof![1 => Just(0.0), 1 => Just(1.0), 2 => 0.0..3.0f64]
}

fn assert_bit_identical(
    what: &str,
    got: &[ScoredPoint],
    want: &[ScoredPoint],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len(), "{}: length mismatch", what);
    for (g, w) in got.iter().zip(want) {
        prop_assert_eq!(g.id, w.id, "{}: id mismatch", what);
        prop_assert_eq!(
            g.score.to_bits(),
            w.score.to_bits(),
            "{}: score bits diverge ({} vs {})",
            what,
            g.score,
            w.score
        );
    }
    Ok(())
}

/// The counter algebra every profiled aggregation must satisfy. `live` is
/// the number of live rows the query ran over.
fn assert_counters_consistent(p: &QueryProfile, k: usize, live: u64) -> Result<(), TestCaseError> {
    prop_assert!(
        p.points_scored <= p.points_gathered,
        "scored {} > gathered {}",
        p.points_scored,
        p.points_gathered
    );
    prop_assert!(
        p.points_gathered <= p.rows_fetched,
        "gathered {} > fetched {}",
        p.points_gathered,
        p.rows_fetched
    );
    prop_assert_eq!(
        p.points_gathered + p.seen_hits + p.tombstones_skipped,
        p.rows_fetched,
        "fetch accounting leaks rows"
    );
    prop_assert_eq!(p.emitted, (k as u64).min(live), "emitted != min(k, live)");
    // The direct single-pair shortcut bypasses the instrumented
    // aggregation loop and legitimately reports only `emitted`; the
    // funnel shape is only meaningful when the aggregation ran.
    if p.rows_fetched > 0 {
        let funnel = p.funnel(live);
        for w in funnel.windows(2).skip(1) {
            prop_assert!(
                w[0].1 >= w[1].1,
                "funnel not monotone: {} {} < {} {}",
                w[0].0,
                w[0].1,
                w[1].0,
                w[1].1
            );
        }
    }
    Ok(())
}

fn build_queries(raw: &[(Vec<f64>, Vec<f64>)]) -> Vec<SdQuery> {
    raw.iter()
        .filter(|(_, w)| w.iter().any(|&x| x > 0.0))
        .map(|(p, w)| SdQuery::new(p.clone(), w.clone()).unwrap())
        .collect()
}

fn roles_from_bits(dims: usize, bits: u8) -> Vec<DimRole> {
    (0..dims)
        .map(|d| {
            if bits & (1 << d) != 0 {
                DimRole::Repulsive
            } else {
                DimRole::Attractive
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Profiling is observation only: a dirty, timing-enabled scratch
    // returns exactly what the fresh allocation path returns, and the
    // counters it leaves behind are internally consistent.
    #[test]
    fn profiled_sd_index_query_is_bit_identical_and_consistent(
        rows in vec(vec(coord(), 4), 1..120),
        raw_queries in vec((vec(coord(), 4), vec(weight(), 4)), 1..6),
        role_bits in 0u8..16,
        k in 1usize..24,
    ) {
        let dims = 4;
        let roles = roles_from_bits(dims, role_bits);
        let live = rows.len() as u64;
        let data = Dataset::from_rows(dims, &rows).unwrap();
        let queries = build_queries(&raw_queries);
        let index = SdIndex::build(data, &roles).unwrap();

        let mut scratch = QueryScratch::new();
        scratch.profile.timing = true;
        for q in &queries {
            let want = index.query(q, k).unwrap();
            let got = index.query_with(q, k, &mut scratch).unwrap().to_vec();
            assert_bit_identical("profiled SdIndex", &got, &want)?;
            assert_counters_consistent(&scratch.profile, k, live)?;
        }
    }

    // The same contract through the sharded engine: per-shard profiles are
    // merged into one, and the merged counters still add up.
    #[test]
    fn profiled_engine_query_is_bit_identical_and_consistent(
        rows in vec(vec(coord(), 3), 1..90),
        raw_queries in vec((vec(coord(), 3), vec(weight(), 3)), 1..5),
        role_bits in 0u8..8,
        k in 1usize..12,
        shards in 1usize..5,
    ) {
        let dims = 3;
        let roles = roles_from_bits(dims, role_bits);
        let live = rows.len() as u64;
        let data = Dataset::from_rows(dims, &rows).unwrap();
        let queries = build_queries(&raw_queries);
        let engine = SdEngine::build_with(
            data,
            &roles,
            &EngineOptions { shards, threads: 1, ..EngineOptions::default() },
        ).unwrap();

        let mut scratch = EngineScratch::new();
        scratch.profile.timing = true;
        for q in &queries {
            let want = engine.query(q, k).unwrap();
            let got = engine.query_with(q, k, &mut scratch).unwrap().to_vec();
            assert_bit_identical("profiled SdEngine", &got, &want)?;
            assert_counters_consistent(&scratch.profile, k, live)?;
        }
    }

    // Pruning decisions are ISA-independent: forcing the scalar kernels
    // changes the reported ISA name, nothing else.
    #[test]
    fn forced_scalar_reports_identical_pruning_counters(
        rows in vec(vec(coord(), 4), 2..100),
        point in vec(coord(), 4),
        weights in vec(weight(), 4),
        role_bits in 0u8..16,
        k in 1usize..16,
    ) {
        prop_assume!(weights.iter().any(|&w| w > 0.0));
        let dims = 4;
        let roles = roles_from_bits(dims, role_bits);
        let data = Dataset::from_rows(dims, &rows).unwrap();
        let index = SdIndex::build(data, &roles).unwrap();
        let q = SdQuery::new(point, weights).unwrap();

        let mut scratch = QueryScratch::new();
        kernels::force_scalar(false);
        let dispatched = index.query_with(&q, k, &mut scratch).unwrap().to_vec();
        let p1 = scratch.profile;
        kernels::force_scalar(true);
        let scalar = index.query_with(&q, k, &mut scratch).unwrap().to_vec();
        let p2 = scratch.profile;
        kernels::force_scalar(false);

        assert_bit_identical("scalar vs dispatched", &scalar, &dispatched)?;
        // Everything except the ISA/batch keys must match exactly.
        prop_assert_eq!(p1.nodes_visited, p2.nodes_visited);
        prop_assert_eq!(p1.envelope_nodes_rejected, p2.envelope_nodes_rejected);
        prop_assert_eq!(p1.blocks_popped, p2.blocks_popped);
        prop_assert_eq!(p1.blocks_floor_pruned, p2.blocks_floor_pruned);
        prop_assert_eq!(p1.lanes_masked, p2.lanes_masked);
        prop_assert_eq!(p1.tree_rows_pulled, p2.tree_rows_pulled);
        prop_assert_eq!(p1.onedim_rows_pulled, p2.onedim_rows_pulled);
        prop_assert_eq!(p1.rows_fetched, p2.rows_fetched);
        prop_assert_eq!(p1.points_gathered, p2.points_gathered);
        prop_assert_eq!(p1.points_scored, p2.points_scored);
        prop_assert_eq!(p1.seen_hits, p2.seen_hits);
        prop_assert_eq!(p1.tombstones_skipped, p2.tombstones_skipped);
        prop_assert_eq!(p1.floor_updates, p2.floor_updates);
        prop_assert_eq!(p1.floor_value.to_bits(), p2.floor_value.to_bits());
        prop_assert_eq!(p1.rounds, p2.rounds);
        prop_assert_eq!(p1.emitted, p2.emitted);
    }
}

// ─── deterministic registry / cumulative-stats coverage ─────────────────────

/// Rows 0..n as a simple 4-D grid — deterministic fixture for the
/// metrics-registry tests below.
fn fixture_engine(n: usize, shards: usize) -> SdEngine {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            vec![
                (i % 13) as f64,
                (i % 7) as f64,
                (i % 5) as f64,
                i as f64 * 0.25,
            ]
        })
        .collect();
    let roles = [
        DimRole::Attractive,
        DimRole::Repulsive,
        DimRole::Repulsive,
        DimRole::Attractive,
    ];
    SdEngine::build_with(
        Dataset::from_rows(4, &rows).unwrap(),
        &roles,
        &EngineOptions {
            shards,
            threads: 1,
            ..EngineOptions::default()
        },
    )
    .unwrap()
}

#[test]
fn engine_metrics_registry_accumulates() {
    let mut engine = fixture_engine(500, 3);
    let q = SdQuery::new(vec![3.0, 2.0, 1.0, 40.0], vec![1.0; 4]).unwrap();

    let mut scratch = EngineScratch::new();
    let mut scored_sum = 0u64;
    for _ in 0..5 {
        engine.query_with(&q, 8, &mut scratch).unwrap();
        scored_sum += scratch.profile.points_scored;
    }
    let snap = engine.metrics().snapshot();
    assert_eq!(snap.queries_served, 5);
    assert_eq!(snap.rows_scored, scored_sum);
    assert!(
        snap.floor_contributions.iter().sum::<u64>() > 0,
        "some shard must have contributed floor updates"
    );
    assert_eq!(snap.compactions, 0);

    // Mutate + compact: the registry sees the compaction and its epoch
    // transitions; queries served keeps counting.
    engine.insert(&[1.0, 1.0, 1.0, 1.0]).unwrap();
    engine.delete(PointId::new(0)).unwrap();
    let report = engine.compact().unwrap();
    assert!(report.rebuilt_shards > 0);
    assert!(report.rows_moved > 0, "compaction rewrites live rows");
    let snap = engine.metrics().snapshot();
    assert_eq!(snap.compactions, 1);
    assert_eq!(snap.epoch_transitions, report.rebuilt_shards as u64);
}

#[test]
fn cumulative_mutation_totals_survive_compact_and_restore() {
    let mut engine = fixture_engine(200, 2);
    engine.insert(&[9.0, 9.0, 9.0, 9.0]).unwrap();
    engine.insert(&[8.0, 8.0, 8.0, 8.0]).unwrap();
    assert!(engine.delete(PointId::new(3)).unwrap());
    assert!(!engine.delete(PointId::new(3)).unwrap(), "already dead");

    let before = engine.mutation_stats();
    assert_eq!(before.inserted_total, 2);
    assert_eq!(before.deleted_total, 1);

    engine.compact().unwrap();
    let after_compact = engine.mutation_stats();
    assert_eq!(
        (after_compact.inserted_total, after_compact.deleted_total),
        (2, 1),
        "compaction folds the delta but keeps lifetime totals"
    );

    // Restore a snapshot-loaded write set: totals account for the
    // restored rows on top of what this engine already did.
    let delta = Dataset::from_rows(4, &[vec![7.0, 7.0, 7.0, 7.0]]).unwrap();
    engine.restore_mutations(delta, &[5]).unwrap();
    let after_restore = engine.mutation_stats();
    assert_eq!(after_restore.inserted_total, 3);
    assert_eq!(after_restore.deleted_total, 2);
}
