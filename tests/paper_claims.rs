//! The paper's formal claims (§2–§4) as executable integration checks,
//! exercised over randomized inputs at the public-API level.

use rand::{Rng, SeedableRng};
use sdq::core::envelope::{provider_at, upper_envelope, Tent};
use sdq::core::geometry::{
    claim1_negative_region, projection_for, score_via_projection, Angle, ProjectionType,
};
use sdq::core::topk::TopKIndex;

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(0x51AC)
}

/// Claim 1: a point whose projections sandwich the query on its axis has a
/// non-positive SD-score.
#[test]
fn claim1_sandwich_implies_nonpositive() {
    let mut rng = rng();
    let mut exercised = 0;
    for _ in 0..20_000 {
        let a = Angle::from_weights(rng.gen_range(0.01..2.0), rng.gen_range(0.0..2.0)).unwrap();
        let (px, py, qx, qy) = (
            rng.gen_range(-3.0..3.0),
            rng.gen_range(-3.0..3.0),
            rng.gen_range(-3.0..3.0),
            rng.gen_range(-3.0..3.0),
        );
        if claim1_negative_region(&a, px, py, qx, qy) {
            exercised += 1;
            assert!(a.normalized_score(px, py, qx, qy) <= 1e-12);
        }
    }
    assert!(exercised > 1000, "the Claim 1 cone must be hit often");
}

/// Claims 2 + 3: the score computed through the Eqn. 6 projection equals
/// the direct score for every configuration.
#[test]
fn claims2_3_projection_identity() {
    let mut rng = rng();
    for _ in 0..20_000 {
        let a = Angle::from_weights(rng.gen_range(0.0..2.0), rng.gen_range(0.001..2.0)).unwrap();
        let (px, py, qx, qy) = (
            rng.gen_range(-5.0..5.0),
            rng.gen_range(-5.0..5.0),
            rng.gen_range(-5.0..5.0),
            rng.gen_range(-5.0..5.0),
        );
        let via = score_via_projection(&a, px, py, qx, qy);
        let direct = a.normalized_score(px, py, qx, qy);
        assert!((via - direct).abs() < 1e-9);
    }
}

/// Eqn. 6: the chosen projection always points from the point towards the
/// query's side.
#[test]
fn eqn6_projection_sides() {
    let mut rng = rng();
    for _ in 0..5000 {
        let (px, py, qx, qy) = (
            rng.gen_range(-5.0..5.0),
            rng.gen_range(-5.0..5.0),
            rng.gen_range(-5.0..5.0),
            rng.gen_range(-5.0..5.0),
        );
        let proj = projection_for(px, py, qx, qy);
        // Left projections only when the point is right of (or on) the axis.
        assert_eq!(proj.is_left(), px >= qx);
        // Lower projections only for points at or above the query.
        assert_eq!(proj.is_lower(), py >= qy);
        let _ = ProjectionType::ALL;
    }
}

/// Claim 4: the true top-k is always contained in the union of the k
/// highest lower projections and the k lowest upper projections.
#[test]
fn claim4_candidate_containment() {
    let mut rng = rng();
    for _ in 0..300 {
        let n = rng.gen_range(1..80);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
            .collect();
        let a = Angle::from_weights(rng.gen_range(0.01..1.0), rng.gen_range(0.01..1.0)).unwrap();
        let (qx, qy) = (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
        let k = rng.gen_range(1..6).min(n);

        // Candidate set per Claim 4.
        let mut by_lower: Vec<usize> = (0..n).collect();
        by_lower.sort_by(|&i, &j| {
            a.lower_at(pts[j].0, pts[j].1, qx)
                .partial_cmp(&a.lower_at(pts[i].0, pts[i].1, qx))
                .unwrap()
        });
        let mut by_upper: Vec<usize> = (0..n).collect();
        by_upper.sort_by(|&i, &j| {
            a.upper_at(pts[i].0, pts[i].1, qx)
                .partial_cmp(&a.upper_at(pts[j].0, pts[j].1, qx))
                .unwrap()
        });
        let mut candidates: Vec<usize> = by_lower[..k].to_vec();
        candidates.extend_from_slice(&by_upper[..k]);

        // True top-k scores.
        let mut scores: Vec<(usize, f64)> = (0..n)
            .map(|i| (i, a.normalized_score(pts[i].0, pts[i].1, qx, qy)))
            .collect();
        scores.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap());
        let kth = scores[k - 1].1;
        for &(i, s) in scores.iter().take(k) {
            // Every top-k member must be reachable through the candidates
            // (modulo exact ties at the k-th score).
            if s > kth + 1e-12 || candidates.contains(&i) {
                continue;
            }
            let tied = scores
                .iter()
                .take(k)
                .filter(|&&(_, t)| (t - s).abs() < 1e-12)
                .count();
            assert!(tied > 0, "top-k member {i} missing from Claim 4 candidates");
        }
    }
}

/// Claim 5: each point provides the highest lower projection in at most
/// one contiguous region of the envelope.
#[test]
fn claim5_contiguous_regions() {
    let mut rng = rng();
    for _ in 0..200 {
        let n = rng.gen_range(1..100);
        let tents: Vec<Tent> = (0..n)
            .map(|_| Tent::new(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)))
            .collect();
        let a = Angle::from_weights(rng.gen_range(0.01..1.0), rng.gen_range(0.01..1.0)).unwrap();
        let regions = upper_envelope(&a, &tents, None);
        let providers: Vec<u32> = regions.iter().map(|r| r.provider).collect();
        let mut seen = std::collections::HashSet::new();
        for w in providers.windows(2) {
            assert_ne!(w[0], w[1], "adjacent duplicate regions");
        }
        for p in &providers {
            assert!(
                seen.insert(*p),
                "provider {p} appears in two disjoint regions"
            );
        }
        // Boundaries strictly increase.
        for w in regions.windows(2) {
            assert!(w[0].x_start < w[1].x_start);
        }
        let _ = provider_at(&regions, 0.0);
    }
}

/// Claim 6 (via its public consequence): bracketed arbitrary-angle queries
/// through the §4 index return exactly the oracle answer.
#[test]
fn claim6_bracketing_is_exact() {
    let mut rng = rng();
    let pts: Vec<(f64, f64)> = (0..400)
        .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
        .collect();
    // Sparse angle grid → wide brackets → Claim 6 does real work.
    let angles = [
        Angle::from_degrees(0.0).unwrap(),
        Angle::from_degrees(90.0).unwrap(),
    ];
    let index = TopKIndex::build_with(&pts, &angles, 8).unwrap();
    for _ in 0..200 {
        let (alpha, beta): (f64, f64) = (rng.gen_range(0.01..1.0), rng.gen_range(0.01..1.0));
        let (qx, qy) = (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
        let k = rng.gen_range(1..8);
        let got = index.query(qx, qy, alpha, beta, k).unwrap();
        let mut want: Vec<f64> = pts
            .iter()
            .map(|&(x, y)| alpha * (y - qy).abs() - beta * (x - qx).abs())
            .collect();
        want.sort_by(|a, b| b.partial_cmp(a).unwrap());
        for (g, w) in got.iter().zip(&want) {
            assert!((g.score - w).abs() < 1e-9);
        }
    }
}

/// §4.2 observation 2 (single crossing): two points' score orderings flip
/// at most once as θ sweeps 0° → 90°.
#[test]
fn single_crossing_property() {
    let mut rng = rng();
    for _ in 0..2000 {
        let (p1, p2, q): ((f64, f64), (f64, f64), (f64, f64)) = (
            (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)),
            (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)),
            (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)),
        );
        let mut flips = 0;
        let mut last_sign: Option<bool> = None;
        for step in 0..=180 {
            let a = Angle::from_degrees(step as f64 / 2.0).unwrap();
            let d =
                a.normalized_score(p1.0, p1.1, q.0, q.1) - a.normalized_score(p2.0, p2.1, q.0, q.1);
            if d.abs() < 1e-12 {
                continue;
            }
            let sign = d > 0.0;
            if let Some(prev) = last_sign {
                if prev != sign {
                    flips += 1;
                }
            }
            last_sign = Some(sign);
        }
        assert!(flips <= 1, "orderings must flip at most once (got {flips})");
    }
}
