//! Property tests for the persistence subsystem: `save → load → query` must
//! be *bit-identical* to the in-memory index for arbitrary finite inputs,
//! and corrupt containers must surface typed errors, never panics.

use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;

use sdq::core::multidim::SdIndex;
use sdq::core::top1::Top1Index;
use sdq::core::topk::TopKIndex;
use sdq::store::{wal, Snapshot, FORMAT_VERSION, MAGIC};
use sdq::{Dataset, DimRole, SdError, SdQuery};

fn coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => -100.0..100.0f64,
        1 => Just(0.0),
        1 => Just(1.0),
        1 => Just(-1.0),
        1 => -1e6..1e6f64,
    ]
}

fn weight() -> impl Strategy<Value = f64> {
    prop_oneof![4 => 0.0..10.0f64, 1 => Just(0.0), 1 => Just(1.0)]
}

/// A snapshot error must be one of the typed snapshot variants.
fn assert_snapshot_error(err: &SdError) {
    assert!(
        matches!(
            err,
            SdError::SnapshotBadMagic
                | SdError::SnapshotVersion { .. }
                | SdError::SnapshotChecksum { .. }
                | SdError::SnapshotCorrupt { .. }
                | SdError::SnapshotIo(_)
        ),
        "unexpected error class: {err:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn topk_snapshot_queries_bit_identical(
        pts in vec((coord(), coord()), 1..80),
        qx in coord(), qy in coord(),
        alpha in weight(), beta in weight(),
        k in 1usize..8,
    ) {
        prop_assume!(alpha > 0.0 || beta > 0.0);
        let index = TopKIndex::build(&pts).unwrap();
        let mut snap = Snapshot::new();
        snap.topk = Some(index.clone());
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        let restored = back.topk.unwrap();
        // Bit-identical results: same ids, same score bits.
        prop_assert_eq!(
            restored.query(qx, qy, alpha, beta, k).unwrap(),
            index.query(qx, qy, alpha, beta, k).unwrap()
        );
    }

    #[test]
    fn top1_snapshot_queries_bit_identical(
        pts in vec((coord(), coord()), 1..60),
        queries in vec((coord(), coord()), 1..6),
        alpha in weight(), beta in weight(),
        k in 1usize..5,
    ) {
        prop_assume!(alpha > 0.0 || beta > 0.0);
        let index = Top1Index::build(&pts, alpha, beta, k).unwrap();
        let mut snap = Snapshot::new();
        snap.top1 = Some(index.clone());
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        let restored = back.top1.unwrap();
        for (qx, qy) in queries {
            prop_assert_eq!(restored.query(qx, qy), index.query(qx, qy));
        }
    }

    #[test]
    fn sd_snapshot_queries_bit_identical(
        rows in vec(vec(coord(), 3), 1..50),
        q in vec(coord(), 3),
        w in vec(weight(), 3),
        rep_mask in 0usize..8,
        k in 1usize..6,
    ) {
        let roles: Vec<DimRole> = (0..3).map(|d| {
            if rep_mask & (1 << d) != 0 { DimRole::Repulsive } else { DimRole::Attractive }
        }).collect();
        let data = Arc::new(Dataset::from_rows(3, &rows).unwrap());
        let index = SdIndex::build(data, &roles).unwrap();
        let mut snap = Snapshot::new();
        snap.sd = Some(index.clone());
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        let restored = back.sd.unwrap();
        let query = SdQuery::new(q, w).unwrap();
        prop_assert_eq!(
            restored.query(&query, k).unwrap(),
            index.query(&query, k).unwrap()
        );
    }

    #[test]
    fn corrupt_containers_are_typed_errors(
        pts in vec((coord(), coord()), 1..40),
        flip_pos in 0usize..10_000,
        flip_bit in 0u8..8,
        cut in 0usize..10_000,
    ) {
        let mut snap = Snapshot::new();
        snap.topk = Some(TopKIndex::build(&pts).unwrap());
        snap.top1 = Some(Top1Index::build(&pts, 1.0, 1.0, 2).unwrap());
        let bytes = snap.to_bytes();

        // Any single-bit flip must be detected (magic, version, checksum or
        // structural validation), with a typed error.
        let mut mutated = bytes.clone();
        let pos = flip_pos % mutated.len();
        mutated[pos] ^= 1 << flip_bit;
        let err = Snapshot::from_bytes(&mutated).expect_err("flip must be detected");
        assert_snapshot_error(&err);

        // Any truncation must fail with a typed error.
        let cut = cut % bytes.len();
        let err = Snapshot::from_bytes(&bytes[..cut]).expect_err("truncation must be detected");
        assert_snapshot_error(&err);
    }
}

#[test]
fn wrong_magic_and_future_version_are_typed() {
    let mut snap = Snapshot::new();
    snap.dataset = Some(Dataset::from_rows(2, &[vec![1.0, 2.0]]).unwrap());
    let bytes = snap.to_bytes();
    assert_eq!(&bytes[..8], &MAGIC);

    let mut wrong = bytes.clone();
    wrong[..8].copy_from_slice(b"NOTASNAP");
    assert!(matches!(
        Snapshot::from_bytes(&wrong).unwrap_err(),
        SdError::SnapshotBadMagic
    ));

    let mut future = bytes.clone();
    future[8..12].copy_from_slice(&(FORMAT_VERSION + 7).to_le_bytes());
    match Snapshot::from_bytes(&future).unwrap_err() {
        SdError::SnapshotVersion { found, supported } => {
            assert_eq!(found, FORMAT_VERSION + 7);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected SnapshotVersion, got {other:?}"),
    }
}

#[test]
fn snapshot_files_roundtrip_on_disk() {
    let dir = std::env::temp_dir().join(format!("sdq-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.sdq");

    let data = Dataset::from_rows(
        2,
        &[
            vec![1.0, 9.0],
            vec![1.1, 2.0],
            vec![7.0, 8.5],
            vec![-3.0, 0.5],
        ],
    )
    .unwrap();
    let roles = vec![DimRole::Attractive, DimRole::Repulsive];
    let index = SdIndex::build(data.clone(), &roles).unwrap();

    let mut snap = Snapshot::new();
    snap.dataset = Some(data);
    snap.roles = Some(roles.clone());
    snap.sd = Some(index.clone());
    snap.save(&path).unwrap();

    let back = Snapshot::load(&path).unwrap();
    let q = SdQuery::uniform_weights(vec![1.0, 2.0], &roles);
    assert_eq!(
        back.sd.unwrap().query(&q, 3).unwrap(),
        index.query(&q, 3).unwrap()
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

// ─── WAL corruption sweeps ──────────────────────────────────────────────────
//
// The same adversarial treatment the snapshot container gets, applied to
// the write-ahead log: every flipped byte, every truncation point and any
// garbage tail must surface a typed `SdError` through the strict reader —
// and the recovery reader must classify a damaged *tail* as torn (salvaging
// the intact prefix) without ever panicking.

/// A WAL image with a header and a few records of every kind.
fn sample_wal() -> Vec<u8> {
    let header = wal::WalHeader {
        dims: 2,
        generation: 3,
        base_rows: 10,
    };
    let mut bytes = header.encode();
    let records = [
        wal::WalRecord::Insert(vec![0.5, -1.5]),
        wal::WalRecord::Delete(4),
        wal::WalRecord::InsertRows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]),
        wal::WalRecord::Insert(vec![9.0, 9.5]),
    ];
    for r in &records {
        bytes.extend_from_slice(&r.encode());
    }
    bytes
}

#[test]
fn every_flipped_wal_byte_is_a_typed_strict_error() {
    let bytes = sample_wal();
    assert_eq!(wal::read_strict(&bytes).unwrap().records.len(), 4);
    for pos in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[pos] ^= 0x01;
        let err = wal::read_strict(&mutated)
            .err()
            .unwrap_or_else(|| panic!("flip at wal byte {pos} went undetected"));
        assert_snapshot_error(&err);
    }
}

#[test]
fn every_wal_truncation_is_strict_error_and_clean_recovery() {
    let bytes = sample_wal();
    let contents = wal::read_strict(&bytes).unwrap();
    let full = contents.records.len();
    // Cuts that land exactly on a record-frame boundary ARE valid logs —
    // a header-only file is what rotation writes, and a shorter record list
    // is simply an older log. Every other cut must be a typed error.
    let mut boundaries = vec![wal::WAL_HEADER_BYTES];
    for r in &contents.records {
        boundaries.push(boundaries.last().unwrap() + r.encode().len());
    }
    for cut in 0..bytes.len() {
        let cut_bytes = &bytes[..cut];
        if let Some(idx) = boundaries.iter().position(|&b| b == cut) {
            assert_eq!(wal::read_strict(cut_bytes).unwrap().records.len(), idx);
        } else {
            let err = wal::read_strict(cut_bytes)
                .err()
                .unwrap_or_else(|| panic!("truncation to {cut} wal bytes went undetected"));
            assert_snapshot_error(&err);
        }
        // Recovery: a truncated header is unrecoverable (typed error); a
        // truncated record list salvages the intact prefix.
        match wal::recover(cut_bytes) {
            Err(e) => {
                assert!(cut < wal::WAL_HEADER_BYTES, "cut {cut}: {e:?}");
                assert_snapshot_error(&e);
            }
            Ok(rec) => {
                assert!(rec.records.len() <= full);
                assert_eq!(rec.valid_len + rec.truncated_bytes, cut as u64);
                // The salvaged prefix must re-read strictly.
                let replay = wal::read_strict(&cut_bytes[..rec.valid_len as usize]).unwrap();
                assert_eq!(replay.records.len(), rec.records.len());
            }
        }
    }
}

#[test]
fn wal_garbage_tail_is_truncated_by_recovery_and_rejected_strictly() {
    let mut bytes = sample_wal();
    let clean_len = bytes.len() as u64;
    bytes.extend_from_slice(b"\xde\xad\xbe\xef garbage that is no record");
    let err = wal::read_strict(&bytes).unwrap_err();
    assert_snapshot_error(&err);
    let rec = wal::recover(&bytes).unwrap();
    assert_eq!(rec.records.len(), 4, "intact records salvaged");
    assert_eq!(rec.valid_len, clean_len);
    assert_eq!(
        rec.truncated_bytes as usize,
        bytes.len() - clean_len as usize
    );
}

#[test]
fn flipped_final_record_crc_is_torn_not_lost() {
    let bytes = sample_wal();
    // Flip one byte inside the *last* record's payload: recovery must drop
    // exactly that record and keep the first three.
    let mut mutated = bytes.clone();
    let last = bytes.len() - 3;
    mutated[last] ^= 0xff;
    let rec = wal::recover(&mutated).unwrap();
    assert_eq!(rec.records.len(), 3);
    assert!(rec.truncated_bytes > 0);
}

#[test]
fn mid_log_corruption_is_a_typed_error_not_a_silent_truncate() {
    let bytes = sample_wal();
    // Flip a payload byte of the FIRST record: valid records follow, so
    // this is real corruption — recovery must refuse rather than silently
    // truncate three good records away.
    let mut mutated = bytes.clone();
    mutated[wal::WAL_HEADER_BYTES + wal::RECORD_PREFIX_BYTES + 2] ^= 0xff;
    let err = wal::recover(&mutated).unwrap_err();
    assert_snapshot_error(&err);
}
