//! Exactness guarantees of the sharded `SdEngine`:
//!
//! * engine answers over `S` shards are **bit-identical** to the unsharded
//!   [`SdIndex`] path — same ids, same score bits — for random datasets,
//!   roles, weights and `k`, *including ties at the k-th score* (the
//!   coordinate generator deliberately draws from a tiny value alphabet so
//!   duplicated rows and tied scores are common, and zero weights force
//!   the planner through its degenerate/1-D branches),
//! * parallel shard execution (threshold-sharing across workers) returns
//!   exactly the sequential answers,
//! * a dirty, reused [`EngineScratch`] answers exactly like a fresh one,
//! * `par_query_batch` is bit-identical to the serial loop,
//! * snapshot round-trips (format v2) preserve engine answers bit-exactly,
//!   and engine-less snapshots still write format v1.

use proptest::collection::vec;
use proptest::prelude::*;

use sdq::core::multidim::SdIndex;
use sdq::engine::{EngineOptions, EngineScratch, SdEngine};
use sdq::store::{Snapshot, FORMAT_V1};
use sdq::{Dataset, DimRole, ScoredPoint, SdQuery};

/// Coordinates from a tiny alphabet: duplicate rows and exact score ties
/// at the k-th position are the norm, not the exception.
fn tie_heavy_coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        1 => Just(0.0),
        1 => Just(1.0),
        1 => Just(2.0),
        1 => Just(3.0),
        1 => Just(-1.5),
        2 => -10.0..10.0f64,
    ]
}

/// Weights including zeros (degenerate pairs / dropped streams) and shared
/// magnitudes (tied contributions).
fn tie_heavy_weight() -> impl Strategy<Value = f64> {
    prop_oneof![
        2 => Just(0.0),
        2 => Just(1.0),
        1 => Just(0.5),
        2 => 0.0..4.0f64,
    ]
}

fn assert_bit_identical(
    what: &str,
    got: &[ScoredPoint],
    want: &[ScoredPoint],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len(), "{}: length mismatch", what);
    for (g, w) in got.iter().zip(want) {
        prop_assert_eq!(g.id, w.id, "{}: id mismatch", what);
        prop_assert_eq!(
            g.score.to_bits(),
            w.score.to_bits(),
            "{}: score bits diverge ({} vs {})",
            what,
            g.score,
            w.score
        );
    }
    Ok(())
}

fn build_queries(dims: usize, raw: &[(Vec<f64>, Vec<f64>)]) -> Vec<SdQuery> {
    raw.iter()
        .map(|(p, w)| SdQuery::new(p[..dims].to_vec(), w[..dims].to_vec()).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The headline guarantee: shard-and-merge == monolithic, bit for bit,
    // sequential and parallel, ties included.
    #[test]
    fn engine_is_bit_identical_to_unsharded(
        rows in vec(vec(tie_heavy_coord(), 4), 1..80),
        raw_queries in vec((vec(tie_heavy_coord(), 4), vec(tie_heavy_weight(), 4)), 1..6),
        role_bits in 0u8..16,
        k in 1usize..20,
        shards in 1usize..7,
    ) {
        let dims = 4;
        let roles: Vec<DimRole> = (0..dims)
            .map(|d| if role_bits & (1 << d) != 0 { DimRole::Repulsive } else { DimRole::Attractive })
            .collect();
        let data = Dataset::from_rows(dims, &rows).unwrap();
        let queries = build_queries(dims, &raw_queries);

        let mono = SdIndex::build(data.clone(), &roles).unwrap();
        let mut sequential = SdEngine::build_with(
            data.clone(),
            &roles,
            &EngineOptions { shards, threads: 1, ..EngineOptions::default() },
        ).unwrap();
        // Same shards, but forced multi-worker execution: the shared
        // threshold is raced across scoped threads.
        let mut parallel = sequential.clone();
        parallel.set_threads(4);

        for q in &queries {
            let want = mono.query(q, k).unwrap();
            let got_seq = sequential.query(q, k).unwrap();
            assert_bit_identical("sequential engine", &got_seq, &want)?;
            let got_par = parallel.query(q, k).unwrap();
            assert_bit_identical("parallel engine", &got_par, &want)?;
        }
        // Silence the unused-mut lint symmetrically.
        sequential.set_threads(1);
    }

    // A scratch dirtied by arbitrary earlier queries returns exactly what
    // a fresh engine query returns.
    #[test]
    fn engine_scratch_reuse_is_bit_identical(
        rows in vec(vec(tie_heavy_coord(), 3), 1..60),
        raw_queries in vec((vec(tie_heavy_coord(), 3), vec(tie_heavy_weight(), 3)), 1..8),
        k in 1usize..10,
        shards in 1usize..5,
    ) {
        let dims = 3;
        let roles = [DimRole::Repulsive, DimRole::Attractive, DimRole::Attractive];
        let data = Dataset::from_rows(dims, &rows).unwrap();
        let queries = build_queries(dims, &raw_queries);
        let engine = SdEngine::build_with(
            data,
            &roles,
            &EngineOptions { shards, threads: 1, ..EngineOptions::default() },
        ).unwrap();

        let mut scratch = EngineScratch::new();
        for q in &queries {
            let fresh = engine.query(q, k).unwrap();
            let reused = engine.query_with(q, k, &mut scratch).unwrap();
            assert_bit_identical("EngineScratch reuse", reused, &fresh)?;
        }
    }

    // The parallel batch path returns exactly the serial answers, in input
    // order.
    #[test]
    fn engine_batch_is_bit_identical_to_serial(
        rows in vec(vec(tie_heavy_coord(), 3), 1..50),
        raw_queries in vec((vec(tie_heavy_coord(), 3), vec(tie_heavy_weight(), 3)), 1..10),
        k in 1usize..8,
        shards in 1usize..5,
        threads in 0usize..7,
    ) {
        let dims = 3;
        let roles = [DimRole::Attractive, DimRole::Repulsive, DimRole::Repulsive];
        let data = Dataset::from_rows(dims, &rows).unwrap();
        let queries = build_queries(dims, &raw_queries);
        let engine = SdEngine::build_with(
            data,
            &roles,
            &EngineOptions { shards, ..EngineOptions::default() },
        ).unwrap();

        let serial: Vec<Vec<ScoredPoint>> =
            queries.iter().map(|q| engine.query(q, k).unwrap()).collect();
        let batch = engine.par_query_batch(&queries, k, threads).unwrap();
        prop_assert_eq!(serial.len(), batch.len());
        for (s, b) in serial.iter().zip(&batch) {
            assert_bit_identical("engine par_query_batch", b, s)?;
        }
    }

    // Snapshot format v2: save → load → query is bit-identical, and the
    // reassembled engine keeps its shard layout.
    #[test]
    fn engine_snapshot_roundtrip_is_bit_identical(
        rows in vec(vec(tie_heavy_coord(), 4), 1..60),
        raw_queries in vec((vec(tie_heavy_coord(), 4), vec(tie_heavy_weight(), 4)), 1..4),
        k in 1usize..10,
        shards in 1usize..5,
    ) {
        let dims = 4;
        let roles = [
            DimRole::Attractive,
            DimRole::Repulsive,
            DimRole::Repulsive,
            DimRole::Attractive,
        ];
        let data = Dataset::from_rows(dims, &rows).unwrap();
        let queries = build_queries(dims, &raw_queries);
        let engine = SdEngine::build_with(
            data,
            &roles,
            &EngineOptions { shards, ..EngineOptions::default() },
        ).unwrap();

        let mut snap = Snapshot::new();
        snap.engine = Some(engine.clone());
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        let restored = back.engine.as_ref().unwrap();
        prop_assert_eq!(restored.shard_count(), engine.shard_count());
        prop_assert_eq!(restored.len(), engine.len());
        for (a, b) in restored.shards().iter().zip(engine.shards()) {
            prop_assert_eq!(a.data().flat(), b.data().flat());
        }
        for q in &queries {
            let want = engine.query(q, k).unwrap();
            let got = restored.query(q, k).unwrap();
            assert_bit_identical("snapshot-restored engine", &got, &want)?;
        }
        // Deterministic bytes.
        prop_assert_eq!(back.to_bytes(), bytes);
    }
}

/// Engine-less snapshots keep writing format v1, so files produced by this
/// build remain readable by pre-engine readers.
#[test]
fn engineless_snapshot_stays_v1() {
    let data = Dataset::from_rows(2, &[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
    let roles = vec![DimRole::Attractive, DimRole::Repulsive];
    let mut snap = Snapshot::new();
    snap.sd = Some(SdIndex::build(data, &roles).unwrap());
    snap.roles = Some(roles);
    let bytes = snap.to_bytes();
    let info = Snapshot::inspect_bytes(&bytes).unwrap();
    assert_eq!(info.version, FORMAT_V1);
    let back = Snapshot::from_bytes(&bytes).unwrap();
    assert!(back.engine.is_none());
    assert!(back.sd.is_some());
}
