//! Crash-consistency property tests for the durability subsystem.
//!
//! The property: for a random sequence of insert/delete/checkpoint ops
//! against a [`DurableEngine`] over [`MemStorage`], simulate a crash at
//! **every** mutating I/O point, reopen the crash image, and the recovered
//! store must equal an *acknowledged prefix* of the op sequence — possibly
//! extended by the single in-flight op whose WAL record survived — with
//! queries bit-identical to a fresh in-memory application of that prefix.
//! Torn WAL tails are truncated, never panicked on.

use proptest::collection::vec;
use proptest::prelude::*;

use sdq::core::{PointId, SdQuery};
use sdq::engine::SdEngine;
use sdq::store::{parse_roles, DurableEngine, DurableOptions, FaultScript, MemStorage};
use sdq::Dataset;

/// One scripted operation, decoded from its tuple form
/// `(kind, x, y, raw)`: kinds 0–3 insert `(x, y)`, 4–5 delete row
/// `raw % total_rows`, 6 checkpoints.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(f64, f64),
    Delete(u64),
    Checkpoint,
}

fn decode_ops(raw: &[(u8, f64, f64, u64)]) -> Vec<Op> {
    raw.iter()
        .map(|&(kind, x, y, target)| match kind {
            0..=3 => Op::Insert(x, y),
            4..=5 => Op::Delete(target),
            _ => Op::Checkpoint,
        })
        .collect()
}

fn base_engine() -> SdEngine {
    let rows: Vec<Vec<f64>> = (0..12)
        .map(|i| {
            let x = i as f64;
            vec![(x * 0.8).sin(), 6.0 - x * 0.5]
        })
        .collect();
    let data = Dataset::from_rows(2, &rows).unwrap();
    SdEngine::build(data, &parse_roles("ar").unwrap()).unwrap()
}

fn probe() -> SdQuery {
    SdQuery::uniform_weights(vec![0.4, 1.5], &parse_roles("ar").unwrap())
}

/// Applies `op` to a durable engine; `Ok` means the op was acknowledged.
fn apply_durable(d: &mut DurableEngine<MemStorage>, op: Op) -> Result<(), sdq::SdError> {
    match op {
        Op::Insert(x, y) => d.insert(&[x, y]).map(|_| ()),
        Op::Delete(raw) => {
            let total = d.engine().total_rows() as u64;
            d.delete(PointId::new((raw % total) as u32)).map(|_| ())
        }
        Op::Checkpoint => d.checkpoint(),
    }
}

/// Applies `op` to a plain in-memory engine — the oracle for what the
/// state after a prefix of ops must look like.
fn apply_plain(engine: &mut SdEngine, op: Op) {
    match op {
        Op::Insert(x, y) => {
            engine.insert(&[x, y]).unwrap();
        }
        Op::Delete(raw) => {
            let total = engine.total_rows() as u64;
            engine.delete(PointId::new((raw % total) as u32)).unwrap();
        }
        Op::Checkpoint => {}
    }
}

/// A state fingerprint precise enough to identify which op prefix the
/// recovered store equals: the addressable row count (pins the applied
/// inserts — they are strictly ordered) plus the tombstone set (pins the
/// applied deletes).
fn fingerprint(engine: &SdEngine) -> (usize, Vec<u32>) {
    (engine.total_rows(), engine.tombstone_ids())
}

/// Crashes at I/O point `crash_at`, reopens the crash image, and asserts
/// the recovered store equals `expected[p]` for some `p` in
/// `[acked, acked + 1]` — bit-identically under the probe query.
fn check_crash_point(
    clean: &MemStorage,
    ops: &[Op],
    expected: &[SdEngine],
    crash_at: u64,
) -> Result<(), TestCaseError> {
    let mut storage = clean.clone();
    storage.set_script(FaultScript::crash_at(crash_at));
    let mut d = DurableEngine::open(storage, "idx.sdq", DurableOptions::default())
        .map_err(|e| TestCaseError::fail(format!("point {crash_at}: faultless open: {e}")))?;
    let mut acked = 0usize;
    for &op in ops {
        if apply_durable(&mut d, op).is_err() {
            break;
        }
        acked += 1;
    }
    let storage = d.into_storage();
    if !storage.crashed() {
        // The scripted point was never reached (an earlier non-I/O error);
        // nothing to verify at this point.
        return Ok(());
    }

    let image = storage.crash_image();
    let back = DurableEngine::open(image, "idx.sdq", DurableOptions::default()).map_err(|e| {
        TestCaseError::fail(format!(
            "point {crash_at}: reopen panicked-free but errored: {e}"
        ))
    })?;

    let got = fingerprint(back.engine());
    let hi = (acked + 1).min(ops.len());
    let matched = (acked..=hi).find(|&p| fingerprint(&expected[p]) == got);
    let Some(p) = matched else {
        return Err(TestCaseError::fail(format!(
            "crash at {crash_at}: recovered fingerprint {got:?} matches no prefix in \
             [{acked}, {hi}] (acked {acked} of {} ops)",
            ops.len()
        )));
    };
    // Bit-identical answers against a fresh in-memory build of that prefix.
    if !expected[p].is_empty() {
        let want = expected[p]
            .query(&probe(), 5)
            .map_err(|e| TestCaseError::fail(format!("point {crash_at}: oracle query: {e}")))?;
        let have = back
            .query(&probe(), 5)
            .map_err(|e| TestCaseError::fail(format!("point {crash_at}: recovered query: {e}")))?;
        if want != have {
            return Err(TestCaseError::fail(format!(
                "crash at {crash_at}: prefix {p} matches structurally but queries \
                 diverge:\n want {want:?}\n have {have:?}"
            )));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn recovery_is_an_acknowledged_prefix_at_every_crash_point(
        raw_ops in vec((0u8..7, -50.0..50.0f64, -50.0..50.0f64, 0u64..1_000_000), 1..10),
    ) {
        let ops = decode_ops(&raw_ops);

        // The durable store everything starts from.
        let d = DurableEngine::create(
            MemStorage::new(),
            "idx.sdq",
            base_engine(),
            DurableOptions::default(),
        )
        .unwrap();
        let clean = d.into_storage();
        let base_points = clean.io_points();

        // Oracle: engine state after every prefix of ops.
        let mut oracle = base_engine();
        let mut expected = vec![oracle.clone()];
        for &op in &ops {
            apply_plain(&mut oracle, op);
            expected.push(oracle.clone());
        }

        // Fault-free dry run: the full sequence must apply, round-trip,
        // and measure how many I/O points the run consumes.
        let mut d = DurableEngine::open(clean.clone(), "idx.sdq", DurableOptions::default())
            .unwrap();
        for &op in &ops {
            apply_durable(&mut d, op).unwrap();
        }
        let final_fp = fingerprint(d.engine());
        prop_assert_eq!(&final_fp, &fingerprint(&expected[ops.len()]));
        let total_points = d.storage().io_points() - base_points;
        let back = DurableEngine::open(
            d.into_storage(),
            "idx.sdq",
            DurableOptions::default(),
        )
        .unwrap();
        prop_assert_eq!(&fingerprint(back.engine()), &final_fp);
        if !back.engine().is_empty() {
            prop_assert_eq!(
                back.query(&probe(), 5).unwrap(),
                expected[ops.len()].query(&probe(), 5).unwrap()
            );
        }

        // The tentpole property: crash at every single I/O point.
        for crash_at in base_points..base_points + total_points {
            check_crash_point(&clean, &ops, &expected, crash_at)?;
        }
    }
}

/// Deterministic companion: a fixed op sequence swept over every crash
/// point, so a regression here fails with a stable, debuggable point
/// number even if the proptest seed derivation changes.
#[test]
fn fixed_sequence_survives_every_crash_point() {
    let ops = [
        Op::Insert(1.5, -2.0),
        Op::Delete(3),
        Op::Checkpoint,
        Op::Insert(-4.0, 4.0),
        Op::Insert(0.25, 0.75),
        Op::Delete(14),
        Op::Checkpoint,
        Op::Insert(9.0, -9.0),
    ];
    let d = DurableEngine::create(
        MemStorage::new(),
        "idx.sdq",
        base_engine(),
        DurableOptions::default(),
    )
    .unwrap();
    let clean = d.into_storage();
    let base_points = clean.io_points();

    let mut oracle = base_engine();
    let mut expected = vec![oracle.clone()];
    for &op in &ops {
        apply_plain(&mut oracle, op);
        expected.push(oracle.clone());
    }

    let mut d = DurableEngine::open(clean.clone(), "idx.sdq", DurableOptions::default()).unwrap();
    for &op in &ops {
        apply_durable(&mut d, op).unwrap();
    }
    let total_points = d.storage().io_points() - base_points;
    assert!(total_points > 20, "sequence must exercise many I/O points");

    for crash_at in base_points..base_points + total_points {
        if let Err(e) = check_crash_point(&clean, &ops, &expected, crash_at) {
            panic!("{e:?}");
        }
    }
}

/// Group commit weakens the ack: with `--sync-every`-style batching, a
/// crash may lose un-fsynced acknowledged records — but recovery must
/// still land on *some* prefix, never an interleaving or a panic.
#[test]
fn group_commit_crash_recovers_to_a_prefix() {
    use sdq::store::SyncPolicy;
    let opts = DurableOptions {
        sync: SyncPolicy::EveryN(3),
    };
    let d = DurableEngine::create(MemStorage::new(), "idx.sdq", base_engine(), opts).unwrap();
    let clean = d.into_storage();
    let base_points = clean.io_points();

    let rows: Vec<[f64; 2]> = (0..8).map(|i| [i as f64 * 0.3, 1.0 - i as f64]).collect();
    let mut d = DurableEngine::open(clean.clone(), "idx.sdq", opts).unwrap();
    for row in &rows {
        d.insert(row).unwrap();
    }
    d.sync().unwrap();
    let total_points = d.storage().io_points() - base_points;

    for crash_at in base_points..base_points + total_points {
        let mut storage = clean.clone();
        storage.set_script(FaultScript::crash_at(crash_at));
        let mut d = DurableEngine::open(storage, "idx.sdq", opts).unwrap();
        let mut applied = 0usize;
        for row in &rows {
            if d.insert(row).is_err() {
                break;
            }
            applied += 1;
        }
        let _ = d.sync();
        let storage = d.into_storage();
        assert!(storage.crashed(), "crash point {crash_at} not reached");
        let back = DurableEngine::open(storage.crash_image(), "idx.sdq", DurableOptions::default())
            .unwrap_or_else(|e| panic!("crash point {crash_at}: reopen failed: {e}"));
        let recovered = back.engine().total_rows() - 12;
        assert!(
            recovered <= applied + 1,
            "crash point {crash_at}: recovered {recovered} rows from {applied} applied"
        );
        // Whatever prefix survived, its rows are exactly rows[..recovered].
        assert_eq!(
            back.engine().delta_rows(),
            recovered,
            "crash point {crash_at}: recovered rows are not a contiguous prefix"
        );
    }
}

/// Permanent environment failures (ENOSPC, EIO) swept over every I/O
/// point of a fixed op sequence: each one must land the engine in
/// degraded (read-only) mode without a panic, leave reads bit-identical
/// to the acknowledged prefix, and — after `try_recover` on a repaired
/// disk — apply the remaining ops exactly once (no double-apply of the
/// op that failed mid-flight).
#[test]
fn permanent_errors_degrade_at_every_io_point_and_recover_cleanly() {
    use sdq::store::{FaultScript as Script, Health};

    let ops = [
        Op::Insert(2.0, -1.0),
        Op::Delete(5),
        Op::Insert(-3.5, 3.5),
        Op::Checkpoint,
        Op::Insert(0.1, 0.9),
        Op::Delete(20),
        Op::Insert(7.0, -7.0),
    ];
    let d = DurableEngine::create(
        MemStorage::new(),
        "idx.sdq",
        base_engine(),
        DurableOptions::default(),
    )
    .unwrap();
    let clean = d.into_storage();
    let base_points = clean.io_points();

    // Oracle states after every prefix.
    let mut oracle = base_engine();
    let mut expected = vec![oracle.clone()];
    for &op in &ops {
        apply_plain(&mut oracle, op);
        expected.push(oracle.clone());
    }

    // Fault-free dry run measures the point span.
    let mut d = DurableEngine::open(clean.clone(), "idx.sdq", DurableOptions::default()).unwrap();
    for &op in &ops {
        apply_durable(&mut d, op).unwrap();
    }
    let total_points = d.storage().io_points() - base_points;
    assert!(total_points > 10, "sequence must exercise many I/O points");

    for errno in [28i32, 5] {
        for fail_at in base_points..base_points + total_points {
            let mut storage = clean.clone();
            storage.set_script(Script::errno_at(fail_at, errno));
            let mut d = DurableEngine::open(storage, "idx.sdq", DurableOptions::default()).unwrap();

            let mut acked = 0usize;
            let mut failed = false;
            for &op in &ops {
                if apply_durable(&mut d, op).is_err() {
                    failed = true;
                    break;
                }
                acked += 1;
            }
            assert!(
                failed,
                "errno {errno} at point {fail_at}: the fault was never hit"
            );

            // The typed contract: degraded, not poisoned, not panicked.
            assert!(
                matches!(d.health(), Health::Degraded { .. }),
                "errno {errno} at point {fail_at}: health is {:?}",
                d.health()
            );
            // A permanent errno must not be retried: exactly one attempt
            // per I/O point (retries would show extra attempted ops).
            assert_eq!(
                d.engine().metrics().snapshot().retries_attempted,
                0,
                "errno {errno} at point {fail_at}: a permanent error was retried"
            );

            // Reads still serve, bit-identical to the acked prefix.
            assert_eq!(
                fingerprint(d.engine()),
                fingerprint(&expected[acked]),
                "errno {errno} at point {fail_at}: degraded state is not the acked prefix"
            );
            assert_eq!(
                d.query(&probe(), 5).unwrap(),
                expected[acked].query(&probe(), 5).unwrap(),
                "errno {errno} at point {fail_at}: degraded reads diverge"
            );

            // Repair the disk, recover, and the failed op must NOT have
            // been half-applied.
            d.storage_mut().set_script(Script::none());
            assert!(
                d.try_recover().unwrap(),
                "errno {errno} at point {fail_at}: try_recover refused a healthy disk"
            );
            assert!(matches!(d.health(), Health::Healthy));
            assert_eq!(
                fingerprint(d.engine()),
                fingerprint(&expected[acked]),
                "errno {errno} at point {fail_at}: recovery double-applied the failed op"
            );

            // The remaining ops (including the one that failed) apply
            // exactly once and land on the full-sequence state.
            for &op in &ops[acked..] {
                apply_durable(&mut d, op).unwrap();
            }
            assert_eq!(
                fingerprint(d.engine()),
                fingerprint(&expected[ops.len()]),
                "errno {errno} at point {fail_at}: resumed sequence diverged"
            );
            assert_eq!(
                d.query(&probe(), 5).unwrap(),
                expected[ops.len()].query(&probe(), 5).unwrap()
            );

            // And the final state round-trips through a clean reopen.
            let back = DurableEngine::open(d.into_storage(), "idx.sdq", DurableOptions::default())
                .unwrap();
            assert_eq!(
                fingerprint(back.engine()),
                fingerprint(&expected[ops.len()])
            );
        }
    }
}
