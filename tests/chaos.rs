//! Randomized fault-schedule property tests over the chaos harness.
//!
//! [`run_chaos`] already asserts the durability invariants internally
//! (acked writes survive crashes, reads are never torn, degraded mode is
//! sticky until recovery, deadline queries stay bounded) and returns
//! `Err` with the offending seed on any violation — so the property here
//! is simply that hundreds of independently seeded schedules all come
//! back clean, and that the harness actually exercised what it claims to.

use proptest::prelude::*;

use sdq::store::{run_chaos, ChaosConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(220))]

    // ≥200 randomized fault schedules: every one must hold the
    // durability invariants end to end.
    #[test]
    fn randomized_fault_schedules_hold_the_durability_invariants(
        seed in 0u64..u64::MAX,
        ops in 40u64..160,
    ) {
        let report = run_chaos(ChaosConfig { seed, ops })
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(report.ops_run, ops);
        // Recovery is mandatory after every degradation — the harness
        // errors otherwise, but the counters must agree too.
        prop_assert_eq!(report.degradations, report.recoveries);
    }
}

/// The fixed schedule CI pins (`sdq chaos --seed 42 --ops 5000`), kept
/// bit-for-bit reproducible here so a CLI regression and a library
/// regression fail the same way.
#[test]
fn the_ci_schedule_exercises_every_fault_class() {
    let report = run_chaos(ChaosConfig {
        seed: 42,
        ops: 5000,
    })
    .expect("the pinned CI chaos schedule must hold every invariant");
    assert_eq!(report.ops_run, 5000);
    assert!(report.faults_injected > 100, "{report:?}");
    assert!(report.crashes > 0, "{report:?}");
    assert!(report.degradations > 0, "{report:?}");
    assert_eq!(report.degradations, report.recoveries, "{report:?}");
    assert!(report.probes > 0, "{report:?}");
    assert!(report.deadline_probes > 0, "{report:?}");
}
