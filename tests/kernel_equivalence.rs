//! Bit-identity guarantees of the vectorized scoring kernels:
//!
//! * the batch kernels reproduce the scalar [`sd_score`] **bit-for-bit**
//!   in every lane — all role mixes, weights including zero, NaN-free
//!   extreme magnitudes, signed-zero terms — under every dispatchable ISA
//!   (forced-scalar and the host's detected level),
//! * the batched k-th-floor survivor compare agrees with a per-lane scalar
//!   filter under arbitrary dirty live masks,
//! * end-to-end: a mutated, sharded [`SdEngine`] answers **bit-identically**
//!   (ids and score bits, k-th-score ties included) with the scalar
//!   fallback forced and with runtime dispatch active — the property that
//!   makes `SDQ_FORCE_SCALAR` a pure performance knob and canonical
//!   answers host-independent.

use std::sync::Mutex;

use proptest::collection::vec;
use proptest::prelude::*;

use sdq::core::kernels::{self, LANES};
use sdq::engine::{EngineOptions, EngineScratch, SdEngine};
use sdq::{sd_score, Dataset, DimRole, PointId, ScoredPoint, SdQuery};

/// `force_scalar` is process-global; serialize the tests that toggle it.
static DISPATCH_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once with the scalar fallback forced and once with runtime
/// dispatch, restoring dispatch afterwards.
fn with_both_dispatches(mut f: impl FnMut(bool)) {
    let _guard = DISPATCH_LOCK.lock().unwrap();
    kernels::force_scalar(true);
    f(true);
    kernels::force_scalar(false);
    f(false);
}

/// Coordinates spanning ties (tiny alphabet) and NaN-free extremes.
fn coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        2 => Just(0.0),
        1 => Just(-0.0),
        2 => Just(1.0),
        1 => Just(-1.5),
        1 => Just(1e300),
        1 => Just(-1e300),
        1 => Just(1e-300),
        3 => -100.0..100.0f64,
    ]
}

fn weight() -> impl Strategy<Value = f64> {
    prop_oneof![
        2 => Just(0.0),
        2 => Just(1.0),
        1 => Just(2.5),
        2 => 0.0..10.0f64,
    ]
}

fn role() -> impl Strategy<Value = DimRole> {
    prop_oneof![Just(DimRole::Attractive), Just(DimRole::Repulsive)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Lane-for-lane, the kernel accumulation is the scalar `sd_score`.
    #[test]
    fn kernel_scores_match_scalar_bitwise(
        dims in 1usize..7,
        seed_cols in vec(coord(), 7 * LANES),
        q in vec(coord(), 7),
        w in vec(weight(), 7),
        roles in vec(role(), 7),
    ) {
        let cols: Vec<&[f64]> = (0..dims).map(|d| &seed_cols[d * LANES..(d + 1) * LANES]).collect();
        with_both_dispatches(|forced| {
            let mut out = [0.0f64; LANES];
            kernels::score_zero(&mut out);
            for d in 0..dims {
                kernels::score_add_dim(&mut out, cols[d], q[d], roles[d].sign() * w[d]);
            }
            for l in 0..LANES {
                let p: Vec<f64> = (0..dims).map(|d| cols[d][l]).collect();
                let want = sd_score(&p, &q[..dims], &roles[..dims], &w[..dims]);
                assert_eq!(
                    out[l].to_bits(),
                    want.to_bits(),
                    "lane {l} (forced_scalar = {forced})"
                );
            }
        });
    }

    // The batched survivor compare is the scalar filter, dirty masks
    // included (dead lanes never survive; ties at the floor do).
    #[test]
    fn survivors_match_scalar_filter(
        scores in vec(coord(), LANES),
        live in 0u32..=u32::MAX,
        floor in coord(),
    ) {
        with_both_dispatches(|forced| {
            let got = kernels::survivors(&scores, live, floor);
            for (l, &s) in scores.iter().enumerate() {
                let want = live & (1 << l) != 0 && s >= floor;
                assert_eq!(
                    got & (1 << l) != 0,
                    want,
                    "lane {l} (forced_scalar = {forced})"
                );
            }
        });
    }
}

/// Tie-heavy end-to-end workload: forced-scalar answers must equal
/// dispatched answers bit-for-bit through the whole engine — sharding,
/// delta region, tombstones, k-th-score ties and all.
#[test]
fn engine_answers_bit_identical_scalar_vs_dispatched() {
    // Tiny coordinate alphabet: k-th-score ties are the norm.
    let rows: Vec<Vec<f64>> = (0..400)
        .map(|i| {
            vec![
                (i % 5) as f64,
                (i % 3) as f64,
                ((i * 7) % 4) as f64 * 0.5,
                (i % 2) as f64,
            ]
        })
        .collect();
    let roles = vec![
        DimRole::Attractive,
        DimRole::Repulsive,
        DimRole::Attractive,
        DimRole::Repulsive,
    ];
    let queries: Vec<SdQuery> = (0..24)
        .map(|i| {
            SdQuery::new(
                vec![
                    (i % 4) as f64,
                    (i % 3) as f64 * 0.5,
                    1.0,
                    (i % 5) as f64 * 0.25,
                ],
                vec![1.0, (i % 3) as f64, 0.5, if i % 4 == 0 { 0.0 } else { 2.0 }],
            )
            .unwrap()
        })
        .collect();

    let run = |queries: &[SdQuery]| -> Vec<Vec<ScoredPoint>> {
        let data = Dataset::from_rows(4, &rows).unwrap();
        let mut engine = SdEngine::build_with(
            data,
            &roles,
            &EngineOptions {
                shards: 3,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        // Dirty the engine: fresh rows in the delta region, tombstones in
        // base and delta — the masked + delta-scan paths must match too.
        for i in 0..40 {
            engine
                .insert(&[(i % 5) as f64, 2.0, (i % 3) as f64, 0.0])
                .unwrap();
        }
        for id in [3u32, 77, 200, 399, 401, 410] {
            engine.delete(PointId::new(id)).unwrap();
        }
        let mut scratch = EngineScratch::new();
        queries
            .iter()
            .flat_map(|q| {
                [1usize, 7, 16, 500]
                    .into_iter()
                    .map(|k| engine.query_with(q, k, &mut scratch).unwrap().to_vec())
                    .collect::<Vec<_>>()
            })
            .collect()
    };

    let _guard = DISPATCH_LOCK.lock().unwrap();
    kernels::force_scalar(true);
    let scalar = run(&queries);
    kernels::force_scalar(false);
    let dispatched = run(&queries);

    assert_eq!(scalar.len(), dispatched.len());
    for (i, (a, b)) in scalar.iter().zip(&dispatched).enumerate() {
        assert_eq!(a.len(), b.len(), "answer {i}");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.id, y.id, "answer {i}");
            assert_eq!(
                x.score.to_bits(),
                y.score.to_bits(),
                "answer {i}: {} vs {}",
                x.score,
                y.score
            );
        }
    }
}

/// The 2-D certified block path (TopKIndex direct queries) is likewise
/// dispatch-independent, stale-block fallback included.
#[test]
fn topk_direct_path_bit_identical_scalar_vs_dispatched() {
    use sdq::core::topk::TopKIndex;
    let pts: Vec<(f64, f64)> = (0..300)
        .map(|i| (((i * 13) % 7) as f64, ((i * 5) % 9) as f64 * 0.5))
        .collect();
    let run = || {
        let mut index = TopKIndex::build(&pts).unwrap();
        let mut out = Vec::new();
        for (qx, qy, alpha, beta, k) in [
            (3.0, 1.0, 1.0, 1.0, 9),
            (0.5, 2.0, 2.0, 0.7, 25),
            (6.0, 0.0, 0.3, 1.9, 4),
        ] {
            out.push(index.query(qx, qy, alpha, beta, k).unwrap());
        }
        // Point-level mutation drops the block layout: the per-point
        // fallback must produce the same canonical answers.
        let id = index.insert(100.0, 100.0).unwrap();
        out.push(index.query(3.0, 1.0, 1.0, 1.0, 9).unwrap());
        index.delete(id);
        out.push(index.query(3.0, 1.0, 1.0, 1.0, 9).unwrap());
        index.refresh_blocks();
        out.push(index.query(3.0, 1.0, 1.0, 1.0, 9).unwrap());
        out
    };
    let _guard = DISPATCH_LOCK.lock().unwrap();
    kernels::force_scalar(true);
    let scalar = run();
    kernels::force_scalar(false);
    let dispatched = run();
    for (a, b) in scalar.iter().zip(&dispatched) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }
}
