//! The online-advertising scenario from the paper's introduction and §5:
//! an advertiser looks for publishers with a *hit rate similar to a top
//! publisher's* but a *price as different (cheaper) as possible*, plus
//! audience coverage similar to a target.
//!
//! Dimensions: price (repulsive), hit rate (attractive), coverage
//! (attractive) — the §5 worked example pairs price with hit rate and
//! leaves coverage as a 1-D subproblem.
//!
//! ```sh
//! cargo run --example advertising
//! ```

use rand::{Rng, SeedableRng};
use sdq::core::multidim::SdIndex;
use sdq::{Dataset, DimRole, SdQuery};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);

    // Synthetic marketplace: price roughly tracks hit rate (top publishers
    // charge more), with noise that hides a few bargains.
    let n = 5_000;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let hit_rate: f64 = rng.gen_range(0.0..1.0);
        let price = (0.8 * hit_rate + rng.gen_range(-0.15..0.15f64)).clamp(0.01, 1.0);
        let coverage: f64 = rng.gen_range(0.0..1.0);
        rows.push(vec![price, hit_rate, coverage]);
    }
    // A premium reference publisher the advertiser wants to imitate.
    let reference = vec![0.92, 0.90, 0.75];
    rows.push(reference.clone());
    let data = Dataset::from_rows(3, &rows).expect("finite coordinates");

    let roles = vec![DimRole::Repulsive, DimRole::Attractive, DimRole::Attractive];
    let index = SdIndex::build(data, &roles).expect("index builds");
    println!(
        "publisher index: pair(s) {:?}, 1-D subproblem dim(s) {:?}",
        index.pairs(),
        index.unpaired()
    );

    // "Hit rate and coverage like the reference, price far from its 0.92."
    let query = SdQuery::new(reference, vec![1.0, 2.0, 0.5]).expect("valid query");
    let top = index.query(&query, 5).expect("query succeeds");

    println!("\nbargain publishers (hit rate ≈ 0.90, price far from 0.92):");
    println!(
        "  {:>10} {:>8} {:>9} {:>10} {:>9}",
        "id", "price", "hit rate", "coverage", "score"
    );
    for sp in &top {
        let p = index.data().point(sp.id);
        println!(
            "  {:>10} {:>8.2} {:>9.2} {:>10.2} {:>9.3}",
            sp.id.to_string(),
            p[0],
            p[1],
            p[2],
            sp.score
        );
        // Every answer should be much cheaper than the reference while
        // keeping a similar hit rate.
        assert!(
            p[0] < 0.7,
            "answers must be much cheaper than the 0.92 reference"
        );
        assert!((p[1] - 0.90).abs() < 0.2, "answers must keep the hit rate");
    }
}
