//! Figure 1 of the paper, executed: a zoological database where each point
//! is a species with a phylogeny coordinate (attractive — we want similar
//! lineages) and a habitat coordinate (repulsive — we want different
//! regions). For q1 the paper's expected top-1 answer is p1; for q2 it is
//! p3.
//!
//! ```sh
//! cargo run --example species_evolution
//! ```

use sdq::core::top1::Top1Index;

fn main() {
    // (phylogeny, habitat) — laid out to match Figure 1's narrative.
    let species = [
        ("p1", (1.0, 9.0)), // same phylogeny as q1, vastly different habitat
        ("p2", (6.0, 8.0)),
        ("p3", (8.0, 9.0)), // closest lineage to q2 among distant habitats
        ("p4", (2.0, 2.0)),
        ("p5", (7.0, 3.0)),
    ];
    let points: Vec<(f64, f64)> = species.iter().map(|s| s.1).collect();

    // k = α = β = 1 known up front: the §3 top-1 region index applies.
    let index = Top1Index::build(&points, 1.0, 1.0, 1).expect("index builds");
    println!(
        "top-1 region index over {} species: {} regions",
        index.len(),
        index.num_regions()
    );

    let queries = [("q1", (1.0, 2.0)), ("q2", (8.0, 3.0))];
    let expected = ["p1", "p3"];
    for ((qname, (qx, qy)), want) in queries.iter().zip(expected) {
        let best = index.query(*qx, *qy)[0];
        let name = species[best.id.index()].0;
        println!(
            "{qname} at (phylogeny {qx}, habitat {qy}) → best match {name} \
             (SD-score {:.1})",
            best.score
        );
        assert_eq!(name, want, "Figure 1's narrative must hold");
    }
    println!("\nFigure 1 reproduced: q1 → p1, q2 → p3.");
}
