//! Scaffold hopping / Table 1 (§6.3): on a ChEMBL-like molecule set, find
//! molecules *similar in drug-likeness* to a reference but *distant in
//! molecular weight* — exceptions to Lipinski's MW < 500 rule that remain
//! drug-like. The discovered molecules show markedly low polar surface
//! area (PSA), the paper's hidden-pattern finding.
//!
//! ```sh
//! cargo run --release --example scaffold_hopping
//! ```

use std::sync::Arc;

use sdq::core::multidim::SdIndex;
use sdq::data::chembl::{column_mean, generate_chembl, ChemblConfig, MoleculeDim};
use sdq::{Dataset, DimRole, SdQuery};

fn main() {
    let molecules = generate_chembl(&ChemblConfig {
        n: 60_000,
        ..Default::default()
    });
    let (dl_col, mw_col) = (molecules.column(0), molecules.column(1));

    // Min-max normalise the two query features (raw scales differ ~100×).
    let (dl_min, dl_max) = dl_col
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let (mw_min, mw_max) = mw_col
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let norm_dl = |v: f64| (v - dl_min) / (dl_max - dl_min);
    let norm_mw = |v: f64| (v - mw_min) / (mw_max - mw_min);
    let mut flat = Vec::with_capacity(molecules.len() * 2);
    for i in 0..molecules.len() {
        flat.push(norm_dl(dl_col[i]));
        flat.push(norm_mw(mw_col[i]));
    }
    let normed = Arc::new(Dataset::from_flat(2, flat).expect("finite"));

    // Drug-likeness attractive, molecular weight repulsive.
    let roles = vec![DimRole::Attractive, DimRole::Repulsive];
    let index = SdIndex::build(normed, &roles).expect("index builds");

    // The paper's query molecule: drug-likeness 11, MW 250.
    let query = SdQuery::new(vec![norm_dl(11.0), norm_mw(250.0)], vec![1.0, 1.0]).expect("valid");

    let overall_dl = column_mean(&molecules, MoleculeDim::DrugLikeness);
    let overall_mw = column_mean(&molecules, MoleculeDim::MolecularWeight);
    let overall_psa = column_mean(&molecules, MoleculeDim::PolarSurfaceArea);
    println!(
        "overall averages: drug-likeness {overall_dl:.2}, MW {overall_mw:.1}, PSA {overall_psa:.2}"
    );
    println!(
        "\n{:>6} {:>14} {:>9} {:>8}",
        "k", "drug-likeness", "MW", "PSA"
    );

    for k in [10usize, 50, 100, 200] {
        let top = index.query(&query, k).expect("query succeeds");
        let avg = |dim: usize| {
            top.iter()
                .map(|sp| molecules.coord(sp.id, dim))
                .sum::<f64>()
                / top.len() as f64
        };
        println!("{:>6} {:>14.2} {:>9.1} {:>8.2}", k, avg(0), avg(1), avg(2));
        assert!(avg(0) > overall_dl, "scaffold hops must stay drug-like");
        assert!(
            avg(1) > 1.8 * overall_mw,
            "scaffold hops must be structurally distant (MW)"
        );
        assert!(
            avg(2) < 0.6 * overall_psa,
            "the low-PSA pattern must emerge"
        );
    }
    println!("\nTable 1's pattern reproduced: overweight yet drug-like molecules with low PSA.");
}
