//! Quickstart: build an SD-Index over a small 2-D dataset and run one
//! query mixing an attractive and a repulsive dimension.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use sdq::core::multidim::SdIndex;
use sdq::{Dataset, DimRole, SdQuery};

fn main() {
    // Ten points: dimension 0 is a feature we want *similar* to the query
    // (attractive), dimension 1 one we want *far* from it (repulsive).
    let data = Dataset::from_rows(
        2,
        &[
            vec![0.10, 0.95],
            vec![0.12, 0.20],
            vec![0.48, 0.85],
            vec![0.50, 0.05],
            vec![0.55, 0.50],
            vec![0.70, 0.99],
            vec![0.72, 0.01],
            vec![0.90, 0.40],
            vec![0.91, 0.93],
            vec![0.95, 0.60],
        ],
    )
    .expect("finite coordinates");
    let roles = vec![DimRole::Attractive, DimRole::Repulsive];

    let index = SdIndex::build(data, &roles).expect("index builds");
    println!(
        "built SD-Index: {} 2-D pair(s), {} unpaired dim(s)",
        index.pairs().len(),
        index.unpaired().len()
    );

    // Query at (0.5, 0.5): similar in dim 0, distant in dim 1; α = β = 1.
    let query = SdQuery::new(vec![0.5, 0.5], vec![1.0, 1.0]).expect("valid query");
    let top3 = index.query(&query, 3).expect("query succeeds");

    println!("top-3 for q = (0.5, 0.5):");
    for sp in &top3 {
        let p = index.data().point(sp.id);
        println!(
            "  {}  at ({:.2}, {:.2})  SD-score = {:+.3}",
            sp.id, p[0], p[1], sp.score
        );
    }
    // The winners sit near x = 0.5 with y far from 0.5.
    assert!(top3[0].score >= top3[1].score);
}
