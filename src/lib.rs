//! # sdq — SD-Query facade
//!
//! Umbrella crate re-exporting the whole SD-Query workspace: the core index
//! structures ([`sdq_core`]), the evaluation baselines
//! ([`sdq_baselines`]), the R*-tree substrate ([`sdq_rstar`]), the
//! workload generators ([`sdq_data`]) and the snapshot persistence layer
//! ([`sdq_store`]).
//!
//! See the repository `README.md` for a guided tour and `DESIGN.md` for the
//! paper-to-module mapping.

pub use sdq_baselines as baselines;
pub use sdq_core as core;
pub use sdq_data as data;
pub use sdq_engine as engine;
pub use sdq_rstar as rstar;
pub use sdq_store as store;

pub use sdq_core::{sd_score, Dataset, DimRole, PointId, ScoredPoint, SdError, SdQuery};
